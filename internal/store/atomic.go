package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// AtomicWriter writes a file so that the final path only ever holds a
// complete artifact: bytes go to a hidden temp file in the target
// directory, and Commit fsyncs the data, renames the temp file over the
// final path, and fsyncs the directory so the rename itself is durable. A
// crash, write error or abort at any earlier point leaves the final path
// exactly as it was - either the previous complete file or absent - never
// a truncated one. Every file-writing command in this repo (clugp -result
// / -assign / -recompress, genweb -out) writes through it.
//
// Usage:
//
//	w, err := store.NewAtomicWriter(path)
//	if err != nil { ... }
//	defer w.Abort() // no-op after a successful Commit
//	... write to w ...
//	return w.Commit()
type AtomicWriter struct {
	mu   sync.Mutex
	path string
	f    *os.File
	done bool
}

// liveWriters tracks every writer between create and Commit/Abort, so a
// signal handler can sweep the temp files of a process killed mid-write
// (AbortPending) instead of littering `.tmp` files next to outputs.
var (
	liveWritersMu sync.Mutex
	liveWriters   = map[*AtomicWriter]struct{}{}
)

func registerWriter(w *AtomicWriter) {
	liveWritersMu.Lock()
	liveWriters[w] = struct{}{}
	liveWritersMu.Unlock()
}

func unregisterWriter(w *AtomicWriter) {
	liveWritersMu.Lock()
	delete(liveWriters, w)
	liveWritersMu.Unlock()
}

// AbortPending aborts every atomic writer that has neither committed nor
// aborted, removing their temp files, and returns how many were swept. It
// is meant for signal handlers on the way to exit: the writers' goroutines
// may still be running, and their next Write fails cleanly rather than
// resurrecting the file.
func AbortPending() int {
	liveWritersMu.Lock()
	pending := make([]*AtomicWriter, 0, len(liveWriters))
	for w := range liveWriters {
		pending = append(pending, w)
	}
	liveWritersMu.Unlock()
	n := 0
	for _, w := range pending {
		if w.abort() {
			n++
		}
	}
	return n
}

// NewAtomicWriter creates the temp file next to path (same directory, so
// the rename cannot cross filesystems).
func NewAtomicWriter(path string) (*AtomicWriter, error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, "."+base+".tmp*")
	if err != nil {
		return nil, err
	}
	w := &AtomicWriter{path: path, f: f}
	registerWriter(w)
	return w, nil
}

// Write implements io.Writer, appending to the temp file.
func (w *AtomicWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.done {
		return 0, fmt.Errorf("store: write to finished atomic writer for %s", w.path)
	}
	return w.f.Write(p)
}

// Commit seals the file: fsync the temp file, close it, rename it over the
// final path, fsync the directory. On any error the temp file is removed
// and the final path is untouched.
func (w *AtomicWriter) Commit() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.done {
		return fmt.Errorf("store: atomic writer for %s already finished", w.path)
	}
	w.done = true
	unregisterWriter(w)
	tmp := w.f.Name()
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		os.Remove(tmp)
		return err
	}
	if err := w.f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, w.path); err != nil {
		os.Remove(tmp)
		return err
	}
	// Make the rename durable. Directory fsync support varies by
	// filesystem; a failure here cannot un-publish the rename, so it is
	// reported but nothing is rolled back.
	dir := filepath.Dir(w.path)
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	if cerr := d.Close(); serr == nil {
		serr = cerr
	}
	return serr
}

// Abort discards the temp file, leaving the final path untouched. It is a
// no-op after Commit (so "defer w.Abort()" is the error-path cleanup) and
// is idempotent.
func (w *AtomicWriter) Abort() {
	w.abort()
}

// abort reports whether this call actually swept the temp file.
func (w *AtomicWriter) abort() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.done {
		return false
	}
	w.done = true
	unregisterWriter(w)
	tmp := w.f.Name()
	w.f.Close()
	os.Remove(tmp)
	return true
}
