//go:build !unix

package store

import (
	"errors"
	"os"
)

var errNoMmap = errors.New("store: mmap not supported on this platform")

// mmapFile always fails on platforms without a wired-up mapping syscall;
// MmapSource then runs in its portable read-at mode.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	return nil, errNoMmap
}

func munmapFile(data []byte) error { return nil }
