package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment artefact: a titled grid of rows that mirrors a
// table or one panel of a figure from the paper.
type Table struct {
	// ID is the experiment artefact id (e.g. "fig3a"; see DESIGN.md).
	ID string
	// Title describes the artefact (e.g. "Replication factor vs #partitions (UK)").
	Title string
	// Header names the columns.
	Header []string
	// Rows hold the cells, already formatted.
	Rows [][]string
	// Note carries caveats (substitutions, scale) shown under the table.
	Note string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table as aligned plain text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if pad := widths[i] - len(c); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := len(widths) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Note)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderAll renders a sequence of tables.
func RenderAll(w io.Writer, tables []Table) error {
	for i := range tables {
		if err := tables[i].Render(w); err != nil {
			return err
		}
	}
	return nil
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

func mb(bytes int64) string {
	return fmt.Sprintf("%.2f", float64(bytes)/(1<<20))
}
