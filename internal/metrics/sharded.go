package metrics

import (
	"fmt"

	"repro/internal/graph"
)

// ShardedReplicaSets is ReplicaSets split by vertex range: shard s owns the
// contiguous vertices [s*span, (s+1)*span), each with its own independently
// allocated word-addressable bitset. This is the refactor that unlocks
// concurrency over the "global status table" the paper blames for the poor
// multi-threaded scaling of heuristic partitioners: workers that own
// disjoint shards mutate disjoint memory, so the table needs no locks - a
// worker simply filters each edge batch to the vertex range it owns.
//
// Per-shard views are plain *ReplicaSets, so shard owners use the exact
// word-addressable API the flat table has; the top-level Add/Has/Count/Word
// methods route by vertex and agree bit-for-bit with a flat table of the
// same contents (held by TestShardedMatchesFlat and FuzzShardedVsFlat).
type ShardedReplicaSets struct {
	n, k   int
	shards int
	span   int // vertices per shard, ceil(n/shards)
	tabs   []ReplicaSets
}

// NewShardedReplicaSets returns an empty table for n vertices and k
// partitions, split into the given number of vertex-range shards.
func NewShardedReplicaSets(n, k, shards int) *ShardedReplicaSets {
	s := &ShardedReplicaSets{}
	s.Reset(n, k, shards)
	return s
}

// Reset clears and resizes the table, reusing each shard's bit storage when
// large enough - the same scratch-reuse contract as ReplicaSets.Reset.
// shards < 1 means one shard; shards is clamped to n so no shard is empty
// (except on an empty vertex set).
func (s *ShardedReplicaSets) Reset(n, k, shards int) {
	// ShardGeometry clamps shards to n and shrinks trailing empty spans
	// (n=257, shards=64 gives span=5 and 52 shards); on an empty vertex set
	// it yields one empty shard, so ShardRange(0) = [0, 0).
	shards, span := ShardGeometry(n, shards)
	s.n, s.k, s.shards, s.span = n, k, shards, span
	if cap(s.tabs) < shards {
		tabs := make([]ReplicaSets, shards)
		copy(tabs, s.tabs)
		s.tabs = tabs
	}
	s.tabs = s.tabs[:shards]
	for i := 0; i < shards; i++ {
		lo, hi := s.ShardRange(i)
		s.tabs[i].Reset(hi-lo, k)
	}
}

// K returns the number of partitions.
func (s *ShardedReplicaSets) K() int { return s.k }

// Words returns the number of 64-bit words per vertex, (k+63)/64.
func (s *ShardedReplicaSets) Words() int { return (s.k + 63) / 64 }

// NumShards returns the shard count.
func (s *ShardedReplicaSets) NumShards() int { return s.shards }

// ShardOf returns the shard owning vertex v.
func (s *ShardedReplicaSets) ShardOf(v graph.VertexID) int { return int(v) / s.span }

// ShardRange returns the vertex range [lo, hi) shard i owns.
func (s *ShardedReplicaSets) ShardRange(i int) (lo, hi int) {
	lo = i * s.span
	hi = lo + s.span
	if hi > s.n {
		hi = s.n
	}
	return lo, hi
}

// Shard returns shard i's table, indexed by local vertex id (v - lo for
// ShardRange(i) = [lo, hi)). A worker that owns shard i may mutate it freely
// while other workers mutate their own shards; no synchronization is needed
// beyond the handoff that assigns ownership.
func (s *ShardedReplicaSets) Shard(i int) *ReplicaSets { return &s.tabs[i] }

// Add records that partition p holds vertex v.
func (s *ShardedReplicaSets) Add(v graph.VertexID, p int) {
	s.tabs[int(v)/s.span].Add(v-graph.VertexID(int(v)/s.span*s.span), p)
}

// Has reports whether partition p holds vertex v.
func (s *ShardedReplicaSets) Has(v graph.VertexID, p int) bool {
	sh := int(v) / s.span
	return s.tabs[sh].Has(v-graph.VertexID(sh*s.span), p)
}

// Word returns the w-th 64-bit word of v's partition set.
func (s *ShardedReplicaSets) Word(v graph.VertexID, w int) uint64 {
	sh := int(v) / s.span
	return s.tabs[sh].Word(v-graph.VertexID(sh*s.span), w)
}

// Count returns |P(v)|.
func (s *ShardedReplicaSets) Count(v graph.VertexID) int {
	sh := int(v) / s.span
	return s.tabs[sh].Count(v - graph.VertexID(sh*s.span))
}

// Partitions appends the partitions holding v to dst and returns it.
func (s *ShardedReplicaSets) Partitions(v graph.VertexID, dst []int32) []int32 {
	sh := int(v) / s.span
	return s.tabs[sh].Partitions(v-graph.VertexID(sh*s.span), dst)
}

// Merge ORs every replica bit of o into s. The two tables must have the
// same geometry (vertices, partitions, shard count); merging is how
// independently accumulated per-worker tables combine into one, and it is
// exact: bit i is set afterwards iff it was set in either table.
func (s *ShardedReplicaSets) Merge(o *ShardedReplicaSets) error {
	if s.n != o.n || s.k != o.k || s.shards != o.shards {
		return fmt.Errorf("metrics: merge geometry mismatch: %dv/%dk/%dsh vs %dv/%dk/%dsh",
			s.n, s.k, s.shards, o.n, o.k, o.shards)
	}
	for i := range s.tabs {
		dst, src := s.tabs[i].bits, o.tabs[i].bits
		for w := range dst {
			dst[w] |= src[w]
		}
	}
	return nil
}

// Bytes returns the memory footprint of the table (all shards).
func (s *ShardedReplicaSets) Bytes() int64 {
	var b int64
	for i := range s.tabs {
		b += s.tabs[i].Bytes()
	}
	return b
}
