package partition

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/stream"
)

func webGraph(n int, seed uint64) *graph.Graph {
	return gen.Web(gen.WebConfig{N: n, OutDegree: 6, CopyFactor: 0.6, Seed: seed})
}

func allPartitioners() []Partitioner {
	ps := Suite(1)
	ps = append(ps,
		&CLUGP{Seed: 1, DisableSplitting: true},
		&CLUGP{Seed: 1, GreedyAssign: true},
	)
	return ps
}

// TestAllAssignEveryEdgeOnce is the core partitioning invariant (Problem 1):
// every edge lands in exactly one partition with a valid id, and partition
// sizes sum to |E|.
func TestAllAssignEveryEdgeOnce(t *testing.T) {
	g := webGraph(2000, 1)
	for _, p := range allPartitioners() {
		for _, k := range []int{1, 2, 8, 33} {
			res, err := Run(p, g, k, 7)
			if err != nil {
				t.Fatalf("%s k=%d: %v", p.Name(), k, err)
			}
			if len(res.Assign) != g.NumEdges() {
				t.Fatalf("%s k=%d: %d assignments for %d edges", p.Name(), k, len(res.Assign), g.NumEdges())
			}
			var total int64
			for _, s := range res.Quality.Sizes {
				total += s
			}
			if total != int64(g.NumEdges()) {
				t.Fatalf("%s k=%d: sizes sum %d != %d", p.Name(), k, total, g.NumEdges())
			}
		}
	}
}

func TestRunRejectsBadK(t *testing.T) {
	g := webGraph(100, 1)
	if _, err := Run(&Hashing{}, g, 0, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	g := webGraph(1500, 2)
	for _, name := range Names() {
		p1, _ := New(name, 3)
		p2, _ := New(name, 3)
		a, err := Run(p1, g, 8, 9)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := Run(p2, g, 8, 9)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range a.Assign {
			if a.Assign[i] != b.Assign[i] {
				t.Fatalf("%s: nondeterministic at edge %d", name, i)
			}
		}
	}
}

func TestRegistry(t *testing.T) {
	for _, name := range Names() {
		p, err := New(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != name {
			t.Fatalf("New(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := New("NOPE", 1); err == nil {
		t.Fatal("unknown name accepted")
	}
	if len(Suite(1)) != 6 {
		t.Fatalf("Suite has %d algorithms, want 6", len(Suite(1)))
	}
}

// TestK1Degenerate: with one partition every algorithm must produce RF == 1
// and perfect balance.
func TestK1Degenerate(t *testing.T) {
	g := webGraph(800, 3)
	for _, p := range allPartitioners() {
		res, err := Run(p, g, 1, 1)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if res.Quality.ReplicationFactor != 1.0 {
			t.Fatalf("%s: RF = %v at k=1", p.Name(), res.Quality.ReplicationFactor)
		}
		if res.Quality.RelativeBalance != 1.0 {
			t.Fatalf("%s: balance = %v at k=1", p.Name(), res.Quality.RelativeBalance)
		}
	}
}

// TestQualityOrderingOnWebGraph encodes the paper's headline (Figure 3):
// on a power-law web graph at moderate k, CLUGP beats the hash-based
// methods clearly and is competitive with (here: at least not far behind)
// the best heuristic.
func TestQualityOrderingOnWebGraph(t *testing.T) {
	g := webGraph(8000, 4)
	k := 32
	rf := map[string]float64{}
	for _, p := range Suite(2) {
		res, err := Run(p, g, k, 5)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		rf[p.Name()] = res.Quality.ReplicationFactor
	}
	if rf["CLUGP"] >= rf["Hashing"] {
		t.Fatalf("CLUGP RF %.3f >= Hashing RF %.3f", rf["CLUGP"], rf["Hashing"])
	}
	if rf["CLUGP"] >= rf["DBH"] {
		t.Fatalf("CLUGP RF %.3f >= DBH RF %.3f", rf["CLUGP"], rf["DBH"])
	}
	if rf["CLUGP"] > 1.8*rf["HDRF"] {
		t.Fatalf("CLUGP RF %.3f far behind HDRF %.3f", rf["CLUGP"], rf["HDRF"])
	}
}

// TestCLUGPBalanceRespectsTau: Algorithm 1's guard must cap every partition
// at ceil(tau*|E|/k).
func TestCLUGPBalanceRespectsTau(t *testing.T) {
	g := webGraph(5000, 5)
	for _, tau := range []float64{1.0, 1.05, 1.1} {
		p := &CLUGP{Tau: tau, Seed: 2}
		res, err := Run(p, g, 16, 3)
		if err != nil {
			t.Fatal(err)
		}
		lmax := int64((tau*float64(g.NumEdges()) + 15) / 16)
		for pid, s := range res.Quality.Sizes {
			if s > lmax {
				t.Fatalf("tau=%v: partition %d holds %d > Lmax %d", tau, pid, s, lmax)
			}
		}
	}
}

func TestCLUGPRejectsBadTau(t *testing.T) {
	g := webGraph(100, 1)
	if _, err := Run(&CLUGP{Tau: 0.5}, g, 4, 1); err == nil {
		t.Fatal("tau < 1 accepted")
	}
}

func TestCLUGPEmptyStream(t *testing.T) {
	p := &CLUGP{}
	assign, err := p.Partition(stream.View{}.Source(10), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(assign) != 0 {
		t.Fatal("assignments from empty stream")
	}
}

// TestClusteringAblation reproduces Figure 9's direction: CLUGP must beat
// CLUGP-S - pass 1 downgraded to the literal Hollocou allocation-migration
// clustering - clearly at moderate-to-large k.
func TestClusteringAblation(t *testing.T) {
	g := webGraph(8000, 6)
	k := 64
	full, err := Run(&CLUGP{Seed: 1}, g, k, 1)
	if err != nil {
		t.Fatal(err)
	}
	holl, err := New("CLUGP-S", 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(holl, g, k, 1)
	if err != nil {
		t.Fatal(err)
	}
	if full.Quality.ReplicationFactor >= res.Quality.ReplicationFactor {
		t.Fatalf("CLUGP RF %.3f >= Holl-clustering RF %.3f", full.Quality.ReplicationFactor, res.Quality.ReplicationFactor)
	}
}

// TestSplittingNeutralOrBetter: within the calibrated clustering, the
// splitting operation alone must not meaningfully hurt the replication
// factor (our reproduction finds it roughly neutral; see EXPERIMENTS.md).
func TestSplittingNeutralOrBetter(t *testing.T) {
	g := webGraph(8000, 6)
	k := 64
	full, err := Run(&CLUGP{Seed: 1}, g, k, 1)
	if err != nil {
		t.Fatal(err)
	}
	noSplit, err := Run(&CLUGP{Seed: 1, DisableSplitting: true}, g, k, 1)
	if err != nil {
		t.Fatal(err)
	}
	if full.Quality.ReplicationFactor > noSplit.Quality.ReplicationFactor*1.10 {
		t.Fatalf("splitting hurt RF by >10%%: %.3f vs %.3f", full.Quality.ReplicationFactor, noSplit.Quality.ReplicationFactor)
	}
}

// TestGameAblation: the game-based placement must beat size-greedy
// placement on replication factor (Figure 9's CLUGP vs CLUGP-G gap).
func TestGameAblation(t *testing.T) {
	g := webGraph(8000, 7)
	k := 32
	gameRes, err := Run(&CLUGP{Seed: 1}, g, k, 1)
	if err != nil {
		t.Fatal(err)
	}
	greedyRes, err := Run(&CLUGP{Seed: 1, GreedyAssign: true}, g, k, 1)
	if err != nil {
		t.Fatal(err)
	}
	if gameRes.Quality.ReplicationFactor >= greedyRes.Quality.ReplicationFactor {
		t.Fatalf("game RF %.3f >= greedy RF %.3f", gameRes.Quality.ReplicationFactor, greedyRes.Quality.ReplicationFactor)
	}
}

func TestCLUGPTrace(t *testing.T) {
	g := webGraph(3000, 8)
	p := &CLUGP{Seed: 1}
	if _, err := Run(p, g, 16, 1); err != nil {
		t.Fatal(err)
	}
	tr := p.LastTrace
	if tr == nil {
		t.Fatal("no trace recorded")
	}
	if tr.NumClusters <= 0 || tr.GameRounds <= 0 {
		t.Fatalf("degenerate trace %+v", tr)
	}
}

// TestHDRFBalance: HDRF's balance term must keep partitions within a
// reasonable band of each other.
func TestHDRFBalance(t *testing.T) {
	g := webGraph(4000, 9)
	res, err := Run(&HDRF{}, g, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Quality.RelativeBalance > 1.25 {
		t.Fatalf("HDRF balance %v too loose", res.Quality.RelativeBalance)
	}
}

// TestDBHCutsHighDegreeVertices: under DBH, the replica count of a vertex
// should grow with its degree; the highest-degree vertex must have more
// replicas than the median vertex.
func TestDBHCutsHighDegreeVertices(t *testing.T) {
	g := webGraph(4000, 10)
	k := 16
	res, err := Run(&DBH{Seed: 1}, g, k, 1)
	if err != nil {
		t.Fatal(err)
	}
	deg := make(map[graph.VertexID]int)
	reps := make(map[graph.VertexID]map[int32]bool)
	edges, err := stream.Collect(res.Stream)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range edges {
		deg[e.Src]++
		deg[e.Dst]++
		for _, v := range []graph.VertexID{e.Src, e.Dst} {
			if reps[v] == nil {
				reps[v] = map[int32]bool{}
			}
			reps[v][res.Assign[i]] = true
		}
	}
	var hub graph.VertexID
	for v, d := range deg {
		if d > deg[hub] {
			hub = v
		}
	}
	if len(reps[hub]) < k/2 {
		t.Fatalf("hub (degree %d) has only %d replicas at k=%d", deg[hub], len(reps[hub]), k)
	}
}

func TestStateBytesMonotonicInK(t *testing.T) {
	// Heuristic state grows with k; hashing stays at zero (Figure 6 shape).
	nv, ne := 100000, 1000000
	hdrf := &HDRF{}
	if hdrf.StateBytes(nv, ne, 256) <= hdrf.StateBytes(nv, ne, 4) {
		t.Fatal("HDRF state not growing with k")
	}
	h := &Hashing{}
	if h.StateBytes(nv, ne, 256) != 0 {
		t.Fatal("Hashing state not zero")
	}
	c := &CLUGP{}
	if c.StateBytes(nv, ne, 256) >= hdrf.StateBytes(nv, ne, 256) {
		t.Fatal("CLUGP state should be far below HDRF at large k")
	}
	m := &Mint{}
	if m.StateBytes(nv, ne, 256) >= hdrf.StateBytes(nv, ne, 256) {
		t.Fatal("Mint state should be below HDRF at large k")
	}
}

// TestQuickValidAssignments property-tests the whole suite on random small
// graphs: assignments always valid whatever the shape.
func TestQuickValidAssignments(t *testing.T) {
	check := func(seed uint64, kRaw uint8) bool {
		k := int(kRaw)%12 + 1
		g := gen.Web(gen.WebConfig{N: 300, OutDegree: 4, CopyFactor: 0.5, Seed: seed})
		for _, p := range allPartitioners() {
			res, err := Run(p, g, k, seed)
			if err != nil {
				return false
			}
			for _, a := range res.Assign {
				if a < 0 || int(a) >= k {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestPreferredOrders(t *testing.T) {
	// The paper's stated best orders: random for one-pass baselines, BFS
	// for Mint and CLUGP.
	for _, p := range []Partitioner{&Hashing{}, &DBH{}, &Greedy{}, &HDRF{}} {
		if p.PreferredOrder() != stream.Random {
			t.Fatalf("%s preferred order %v, want random", p.Name(), p.PreferredOrder())
		}
	}
	for _, p := range []Partitioner{&Mint{}, &CLUGP{}} {
		if p.PreferredOrder() != stream.BFS {
			t.Fatalf("%s preferred order %v, want bfs", p.Name(), p.PreferredOrder())
		}
	}
}

func TestMintBatchBoundaries(t *testing.T) {
	g := webGraph(2000, 11)
	// Batch sizes around the edge count exercise the final-partial-batch path.
	for _, b := range []int{1, 7, 1000, 1 << 20} {
		p := &Mint{BatchSize: b, Seed: 1}
		res, err := Run(p, g, 8, 1)
		if err != nil {
			t.Fatalf("batch=%d: %v", b, err)
		}
		if len(res.Assign) != g.NumEdges() {
			t.Fatalf("batch=%d: assignment truncated", b)
		}
	}
}

func TestGreedyUsesIntersection(t *testing.T) {
	// Hand stream: (0,1) -> p; (0,2) and (1,2) must join partitions holding
	// their seen endpoints; final edge (0,1) repeats and must reuse the
	// intersection.
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 1, Dst: 2}, {Src: 0, Dst: 1}}
	g := &Greedy{}
	assign, err := g.Partition(stream.Of(edges).Source(3), 4)
	if err != nil {
		t.Fatal(err)
	}
	if assign[3] != assign[0] {
		t.Fatalf("repeated edge left its endpoints' common partition: %v", assign)
	}
}
