package graph

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func small() *Graph {
	return New(0, []Edge{{0, 1}, {1, 2}, {2, 0}, {3, 1}, {3, 3}})
}

func TestNewInfersVertexCount(t *testing.T) {
	g := small()
	if g.NumVertices != 4 {
		t.Fatalf("NumVertices = %d, want 4", g.NumVertices)
	}
	if g.NumEdges() != 5 {
		t.Fatalf("NumEdges = %d, want 5", g.NumEdges())
	}
}

func TestNewExplicitVertexCount(t *testing.T) {
	g := New(10, []Edge{{0, 1}})
	if g.NumVertices != 10 {
		t.Fatalf("NumVertices = %d, want 10", g.NumVertices)
	}
}

func TestDegrees(t *testing.T) {
	g := small()
	deg := g.Degrees()
	// Vertex 3 has a self-loop (3,3): counts 2, plus (3,1): total 3.
	want := []uint32{2, 3, 2, 3}
	for v, w := range want {
		if deg[v] != w {
			t.Errorf("deg[%d] = %d, want %d", v, deg[v], w)
		}
	}
}

func TestInOutDegrees(t *testing.T) {
	g := small()
	out := g.OutDegrees()
	in := g.InDegrees()
	var sumOut, sumIn uint32
	for v := range out {
		sumOut += out[v]
		sumIn += in[v]
	}
	if int(sumOut) != g.NumEdges() || int(sumIn) != g.NumEdges() {
		t.Fatalf("degree sums %d/%d, want %d", sumOut, sumIn, g.NumEdges())
	}
	if out[3] != 2 || in[1] != 2 {
		t.Fatalf("out[3]=%d in[1]=%d, want 2,2", out[3], in[1])
	}
}

func TestMaxDegree(t *testing.T) {
	if got := small().MaxDegree(); got != 3 {
		t.Fatalf("MaxDegree = %d, want 3", got)
	}
	if got := New(5, nil).MaxDegree(); got != 0 {
		t.Fatalf("empty MaxDegree = %d, want 0", got)
	}
}

func TestValidate(t *testing.T) {
	if err := small().Validate(); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}
	bad := &Graph{NumVertices: 2, Edges: []Edge{{0, 5}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
}

func TestCloneIndependent(t *testing.T) {
	g := small()
	c := g.Clone()
	c.Edges[0] = Edge{9, 9}
	if g.Edges[0] == c.Edges[0] {
		t.Fatal("Clone shares edge storage")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := small()
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVertices != g.NumVertices || back.NumEdges() != g.NumEdges() {
		t.Fatalf("roundtrip shape %d/%d, want %d/%d", back.NumVertices, back.NumEdges(), g.NumVertices, g.NumEdges())
	}
	for i := range g.Edges {
		if g.Edges[i] != back.Edges[i] {
			t.Fatalf("edge %d: %v != %v", i, g.Edges[i], back.Edges[i])
		}
	}
}

func TestReadEdgeListCommentsAndSeparators(t *testing.T) {
	in := "# comment\n% another\n0 1\n1\t2\n2,3\n\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 3 || g.NumVertices != 4 {
		t.Fatalf("got %d edges %d vertices, want 3, 4", g.NumEdges(), g.NumVertices)
	}
}

func TestReadEdgeListRejectsGarbage(t *testing.T) {
	if _, err := ReadEdgeList(strings.NewReader("a b\n")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadEdgeList(strings.NewReader("1\n")); err == nil {
		t.Fatal("missing dst accepted")
	}
	if _, err := ReadEdgeList(strings.NewReader("1 -2\n")); err == nil {
		t.Fatal("negative dst accepted")
	}
}

func TestCSR(t *testing.T) {
	g := small()
	csr := BuildCSR(g)
	if csr.OutDegree(3) != 2 {
		t.Fatalf("OutDegree(3) = %d, want 2", csr.OutDegree(3))
	}
	n3 := csr.Neigh(3)
	if len(n3) != 2 || n3[0] != 1 || n3[1] != 3 {
		t.Fatalf("Neigh(3) = %v, want [1 3]", n3)
	}
	// Total neighbours == edges.
	total := 0
	for v := 0; v < g.NumVertices; v++ {
		total += csr.OutDegree(VertexID(v))
	}
	if total != g.NumEdges() {
		t.Fatalf("CSR holds %d edges, want %d", total, g.NumEdges())
	}
}

func TestUndirectedCSR(t *testing.T) {
	g := small()
	csr := BuildUndirectedCSR(g)
	total := 0
	for v := 0; v < g.NumVertices; v++ {
		total += csr.OutDegree(VertexID(v))
	}
	if total != 2*g.NumEdges() {
		t.Fatalf("undirected CSR holds %d half-edges, want %d", total, 2*g.NumEdges())
	}
	// Edge (0,1) must appear from both sides.
	found := false
	for _, w := range csr.Neigh(1) {
		if w == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("reverse direction of (0,1) missing")
	}
}

func TestCSRMatchesEdgeList(t *testing.T) {
	check := func(raw []uint16, n uint8) bool {
		nv := int(n)%64 + 2
		var edges []Edge
		for _, r := range raw {
			edges = append(edges, Edge{VertexID(int(r) % nv), VertexID(int(r>>8) % nv)})
		}
		g := New(nv, edges)
		csr := BuildCSR(g)
		// Count every edge through the CSR.
		count := make(map[Edge]int)
		for v := 0; v < nv; v++ {
			for _, w := range csr.Neigh(VertexID(v)) {
				count[Edge{VertexID(v), w}]++
			}
		}
		for _, e := range edges {
			count[e]--
		}
		for _, c := range count {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPowerLawAlpha(t *testing.T) {
	// Construct degrees following f(d) ~ d^-2.5 and verify the MLE
	// recovers the exponent within tolerance.
	// The continuous-approximation MLE is only calibrated for xmin >~ 6
	// (Clauset-Shalizi-Newman), so fit the tail from degree 10 up.
	var degrees []uint32
	for d := uint32(1); d <= 1000; d++ {
		count := int(1e7 * math.Pow(float64(d), -2.5))
		for i := 0; i < count; i++ {
			degrees = append(degrees, d)
		}
	}
	alpha := PowerLawAlpha(degrees, 10)
	if alpha < 2.3 || alpha > 2.7 {
		t.Fatalf("fitted alpha %v, want ~2.5", alpha)
	}
}

func TestGiniCoefficient(t *testing.T) {
	uniform := make([]uint32, 1000)
	for i := range uniform {
		uniform[i] = 5
	}
	if gi := GiniCoefficient(uniform); gi > 0.01 {
		t.Fatalf("uniform degrees Gini %v, want ~0", gi)
	}
	skewed := make([]uint32, 1000)
	skewed[0] = 100000
	for i := 1; i < len(skewed); i++ {
		skewed[i] = 1
	}
	if gi := GiniCoefficient(skewed); gi < 0.9 {
		t.Fatalf("extreme skew Gini %v, want > 0.9", gi)
	}
	if gi := GiniCoefficient(nil); gi != 0 {
		t.Fatalf("empty Gini %v, want 0", gi)
	}
}

func TestComputeStats(t *testing.T) {
	g := small()
	s := ComputeStats(g)
	if s.NumVertices != 4 || s.NumEdges != 5 {
		t.Fatalf("stats shape %+v", s)
	}
	if s.MaxDegree != 3 {
		t.Fatalf("MaxDegree %d, want 3", s.MaxDegree)
	}
	if s.MeanDegree <= 0 {
		t.Fatalf("MeanDegree %v, want > 0", s.MeanDegree)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := small()
	degs, counts := g.DegreeHistogram()
	if len(degs) != len(counts) {
		t.Fatal("length mismatch")
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != g.NumVertices {
		t.Fatalf("histogram covers %d vertices, want %d", total, g.NumVertices)
	}
	for i := 1; i < len(degs); i++ {
		if degs[i] <= degs[i-1] {
			t.Fatal("histogram degrees not strictly increasing")
		}
	}
}
