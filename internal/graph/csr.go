package graph

// CSR is a compressed sparse row adjacency view of a graph. Out[Offsets[v]:
// Offsets[v+1]] lists the out-neighbours of v in edge order. CSR views are
// immutable snapshots; mutating the source graph afterwards does not affect
// them.
type CSR struct {
	NumVertices int
	Offsets     []int64
	Neighbors   []VertexID
}

// BuildCSR builds an out-adjacency CSR from the graph using counting sort,
// O(|V|+|E|) time and exactly one |E|-sized allocation for the neighbour
// array.
func BuildCSR(g *Graph) *CSR {
	n := g.NumVertices
	off := make([]int64, n+1)
	for _, e := range g.Edges {
		off[e.Src+1]++
	}
	for i := 0; i < n; i++ {
		off[i+1] += off[i]
	}
	nbr := make([]VertexID, len(g.Edges))
	cursor := make([]int64, n)
	copy(cursor, off[:n])
	for _, e := range g.Edges {
		nbr[cursor[e.Src]] = e.Dst
		cursor[e.Src]++
	}
	return &CSR{NumVertices: n, Offsets: off, Neighbors: nbr}
}

// BuildUndirectedCSR builds a CSR where every directed edge contributes both
// (u,v) and (v,u), i.e. the adjacency of the underlying undirected
// multigraph. BFS crawl ordering and connected components use this view.
func BuildUndirectedCSR(g *Graph) *CSR {
	n := g.NumVertices
	off := make([]int64, n+1)
	for _, e := range g.Edges {
		off[e.Src+1]++
		off[e.Dst+1]++
	}
	for i := 0; i < n; i++ {
		off[i+1] += off[i]
	}
	nbr := make([]VertexID, 2*len(g.Edges))
	cursor := make([]int64, n)
	copy(cursor, off[:n])
	for _, e := range g.Edges {
		nbr[cursor[e.Src]] = e.Dst
		cursor[e.Src]++
		nbr[cursor[e.Dst]] = e.Src
		cursor[e.Dst]++
	}
	return &CSR{NumVertices: n, Offsets: off, Neighbors: nbr}
}

// Neigh returns the out-neighbour slice of v. The slice aliases internal
// storage and must not be modified.
func (c *CSR) Neigh(v VertexID) []VertexID {
	return c.Neighbors[c.Offsets[v]:c.Offsets[v+1]]
}

// OutDegree returns the out-degree of v in this view.
func (c *CSR) OutDegree(v VertexID) int {
	return int(c.Offsets[v+1] - c.Offsets[v])
}
