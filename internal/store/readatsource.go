package store

import (
	"io"

	"repro/internal/stream"
)

// ReaderAtSource streams a CGR file of any format from an arbitrary
// io.ReaderAt: the same decode core, checkpoint index, segmenting and lazy
// integrity verification as the file-backed sources, over bytes the caller
// provides. This is the seam the fault-injection harness (internal/faultfs)
// plugs into - an injecting ReaderAt slides under the unchanged File
// interface, so every conformance and bit-equivalence matrix can run with
// faults injected beneath it - and it also serves in-memory buffers
// (byteReaderAt) without temp files.
//
// The source does not own the ReaderAt: Close releases only the handle's
// decode buffer, and the caller keeps whatever resource backs r alive until
// every handle (root and segments) is done. ReadAt must be safe for
// concurrent calls, as os.File and bytes.Reader are.
type ReaderAtSource struct {
	segCore
	r    io.ReaderAt
	root *ReaderAtSource
}

// OpenReaderAt opens the first size bytes of r as a graph source. name is
// used in error messages and Path only. Checksummed (CGR3) inputs get the
// same eager trailer validation and lazy payload verification as Open.
func OpenReaderAt(r io.ReaderAt, size int64, name string) (*ReaderAtSource, error) {
	s := &ReaderAtSource{r: r}
	s.path, s.size = name, size
	if err := s.initIntegrity(r); err != nil {
		return nil, err
	}
	pay := s.payLimit()
	s.dec.cur = readAtCursor(r, pay)
	s.newScanCursor = func() (cursor, func(), error) {
		return readAtCursor(r, pay), nil, nil
	}
	if err := s.initHeader(); err != nil {
		return nil, err
	}
	return s, nil
}

// Segment implements stream.Segmenter: the segment shares the ReaderAt
// (ReadAt is stateless) with its own cursor, positioned via the shared
// checkpoint index. lo and hi are relative to this source, so segments
// nest. Close each segment when its consumer is done.
func (s *ReaderAtSource) Segment(lo, hi int) (stream.Source, error) {
	root := s.rootSource()
	seg := &ReaderAtSource{r: s.r, root: root}
	seg.raw = s.r
	seg.dec.cur = readAtCursor(s.r, s.payLimit())
	if err := s.segmentWindow(&root.segCore, &seg.segCore, lo, hi); err != nil {
		return nil, err
	}
	return seg, nil
}

func (s *ReaderAtSource) rootSource() *ReaderAtSource {
	if s.root != nil {
		return s.root
	}
	return s
}

// Close returns the handle's decode buffer to the pool and marks it closed;
// the underlying ReaderAt belongs to the caller and is left open. Close is
// idempotent.
func (s *ReaderAtSource) Close() error {
	s.markClosed()
	return nil
}
