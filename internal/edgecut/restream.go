package edgecut

import (
	"fmt"

	"repro/internal/graph"
)

// Restream wraps a streaming edge-cut partitioner with the restreaming
// framework of Nishimura and Ugander (KDD 2013) - the lineage the paper's
// own "restreaming architecture" builds on: run the stream repeatedly,
// letting each pass see the previous pass's full assignment instead of only
// the prefix's. ReLDG and ReFENNEL converge within a handful of passes and
// close most of the gap to offline partitioners.
type Restream struct {
	// Inner is the per-pass policy: "LDG" or "FENNEL".
	Inner string
	// Passes is the number of streaming passes (default 5).
	Passes int
	// Slack / Gamma forward to the inner policy's knobs (zero = defaults).
	Slack float64
	Gamma float64
}

// Name implements Partitioner.
func (r *Restream) Name() string {
	inner := r.Inner
	if inner == "" {
		inner = "LDG"
	}
	return "Re" + inner
}

// Partition implements Partitioner.
func (r *Restream) Partition(g *graph.Graph, k int) ([]int32, error) {
	if k < 1 {
		return nil, fmt.Errorf("edgecut: k must be >= 1, got %d", k)
	}
	passes := r.Passes
	if passes <= 0 {
		passes = 5
	}
	inner := r.Inner
	if inner == "" {
		inner = "LDG"
	}

	// First pass: the plain streaming algorithm.
	var assign []int32
	var err error
	switch inner {
	case "LDG":
		assign, err = (&LDG{Slack: r.Slack}).Partition(g, k)
	case "FENNEL":
		assign, err = (&FENNEL{Gamma: r.Gamma}).Partition(g, k)
	default:
		return nil, fmt.Errorf("edgecut: unknown restream inner %q (want LDG or FENNEL)", inner)
	}
	if err != nil {
		return nil, err
	}

	csr := graph.BuildUndirectedCSR(g)
	capacity := float64(g.NumVertices) / float64(k)
	if s := r.Slack; s > 0 {
		capacity *= s
	}
	neighCount := make([]int32, k)
	next := make([]int32, g.NumVertices)
	// Hard per-pass balance cap, as in single-pass FENNEL.
	maxSize := int64(1.1*float64(g.NumVertices)/float64(k)) + 1

	cutOf := func(a []int32) int64 {
		var c int64
		for _, e := range g.Edges {
			if a[e.Src] != a[e.Dst] {
				c++
			}
		}
		return c
	}
	best := make([]int32, g.NumVertices)
	copy(best, assign)
	bestCut := cutOf(assign)

	// Restreaming passes: re-run the stream from scratch - partition sizes
	// reset so the capacity penalty works as in pass one - but score each
	// vertex's neighbours with full knowledge: vertices already re-placed
	// this pass count at their new partition, the rest at their previous
	// one (Nishimura-Ugander's most-recent-label rule). The dynamics can
	// oscillate, so the best pass by cut wins.
	sizes := make([]int64, k)
	for pass := 1; pass < passes; pass++ {
		clear(sizes)
		changed := false
		for v := 0; v < g.NumVertices; v++ {
			for p := range neighCount {
				neighCount[p] = 0
			}
			for _, w := range csr.Neigh(graph.VertexID(v)) {
				if int(w) < v {
					neighCount[next[w]]++
				} else {
					neighCount[assign[w]]++
				}
			}
			bestP := int32(-1)
			bestScore := 0.0
			for p := int32(0); p < int32(k); p++ {
				if sizes[p] >= maxSize {
					continue
				}
				s := score(inner, neighCount[p], sizes[p], capacity)
				if bestP < 0 || s > bestScore || (s == bestScore && sizes[p] < sizes[bestP]) {
					bestScore = s
					bestP = p
				}
			}
			if bestP < 0 { // every partition at cap: lightest wins
				bestP = 0
				for p := int32(1); p < int32(k); p++ {
					if sizes[p] < sizes[bestP] {
						bestP = p
					}
				}
			}
			next[v] = bestP
			sizes[bestP]++
			if bestP != assign[v] {
				changed = true
			}
		}
		copy(assign, next)
		if c := cutOf(assign); c < bestCut {
			bestCut = c
			copy(best, assign)
		}
		if !changed {
			break
		}
	}
	return best, nil
}

// score evaluates the policy's objective for joining a partition with the
// given neighbour count and current size.
func score(inner string, neigh int32, size int64, capacity float64) float64 {
	switch inner {
	case "FENNEL":
		// The marginal FENNEL objective with gamma=1.5 reduces to
		// neigh - c*sqrt(size); the constant drops out of the argmax when
		// capacity carries it.
		return float64(neigh) - 1.5*float64(size)/capacity
	default: // LDG
		penalty := 1 - float64(size)/capacity
		if penalty < 0 {
			penalty = 0
		}
		return float64(neigh) * penalty
	}
}
