package engine

import (
	"fmt"
	"runtime"
	"sync"
)

// ParallelPageRank executes the same GAS computation as PageRank with the
// per-node work genuinely concurrent: every superstep runs the local gather
// and apply phases as one goroutine per logical node separated by barriers,
// while the cross-node exchange phases (mirror->master combine, dangling
// reduce, master->mirror sync) run between barriers, exactly like a BSP
// system's communication step. Results are bit-identical to the sequential
// engine (validated by tests), because per-node floating-point work touches
// disjoint state and the exchange order is fixed.
//
// Message/byte accounting matches PageRank; SimTime remains the model time
// (the simulated cluster's makespan), not this process's wall time.
func ParallelPageRank(pl *Placement, cfg PageRankConfig, workers int) ([]float64, RunStats, error) {
	if cfg.Damping == 0 {
		cfg.Damping = 0.85
	}
	if cfg.Damping < 0 || cfg.Damping >= 1 {
		return nil, RunStats{}, fmt.Errorf("engine: damping %v out of [0,1)", cfg.Damping)
	}
	if cfg.Iterations == 0 {
		cfg.Iterations = 10
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cm := cfg.Cost.withDefaults()
	n := pl.NumVertices
	if n == 0 {
		return nil, RunStats{}, nil
	}
	nf := float64(n)
	d := cfg.Damping

	outdeg := make([]int64, n)
	for i := range pl.Nodes {
		node := &pl.Nodes[i]
		for _, e := range node.Edges {
			outdeg[node.Global[e.Src]]++
		}
	}

	rank := make([][]float64, pl.K)
	acc := make([][]float64, pl.K)
	for i := range pl.Nodes {
		ln := len(pl.Nodes[i].Global)
		rank[i] = make([]float64, ln)
		acc[i] = make([]float64, ln)
		for l := range rank[i] {
			rank[i][l] = 1 / nf
		}
	}

	var stats RunStats
	stats.MaxLocalEdges = pl.MaxLocalEdges()

	// forEachNode runs fn(node index) across a bounded worker pool and
	// waits - one barrier-separated parallel phase.
	sem := make(chan struct{}, workers)
	forEachNode := func(fn func(i int)) {
		var wg sync.WaitGroup
		for i := 0; i < pl.K; i++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				fn(i)
			}(i)
		}
		wg.Wait()
	}

	// Per-node partial dangling sums, combined sequentially for
	// deterministic float addition order.
	danglingPart := make([]float64, pl.K)

	for it := 0; it < cfg.Iterations; it++ {
		var messages int64

		// Parallel phase: local gather + local dangling partials.
		forEachNode(func(i int) {
			node := &pl.Nodes[i]
			a := acc[i]
			r := rank[i]
			for l := range a {
				a[l] = 0
			}
			for _, e := range node.Edges {
				od := outdeg[node.Global[e.Src]]
				a[e.Dst] += r[e.Src] / float64(od)
			}
			var dp float64
			for l := range node.Global {
				if node.IsMaster[l] && outdeg[node.Global[l]] == 0 {
					dp += r[l]
				}
			}
			danglingPart[i] = dp
		})

		// Exchange: mirror -> master combine (fixed order).
		for _, sp := range pl.Sync {
			acc[sp.MasterNode][sp.MasterLocal] += acc[sp.MirrorNode][sp.MirrorLocal]
		}
		messages += int64(len(pl.Sync))

		var dangling float64
		for _, dp := range danglingPart {
			dangling += dp
		}
		messages += int64(pl.K)

		// Parallel phase: apply at masters.
		base := (1 - d) / nf
		spread := d * dangling / nf
		forEachNode(func(i int) {
			node := &pl.Nodes[i]
			for l := range node.Global {
				if node.IsMaster[l] {
					rank[i][l] = base + d*acc[i][l] + spread
				}
			}
		})

		// Exchange: master -> mirror sync.
		for _, sp := range pl.Sync {
			rank[sp.MirrorNode][sp.MirrorLocal] = rank[sp.MasterNode][sp.MasterLocal]
		}
		messages += int64(len(pl.Sync))

		stats.accountSuperstep(cm, stats.MaxLocalEdges, messages)
	}

	out := make([]float64, n)
	for i := range pl.Nodes {
		node := &pl.Nodes[i]
		for l, v := range node.Global {
			if node.IsMaster[l] {
				out[v] = rank[i][l]
			}
		}
	}
	return out, stats, nil
}
