package partition

import "fmt"

// Suite returns the six algorithms of the paper's evaluation in its
// plotting order, constructed with their default (paper Section VI)
// parameters and the given seed.
func Suite(seed uint64) []Partitioner {
	return []Partitioner{
		&HDRF{},
		&Greedy{},
		&Hashing{Seed: seed},
		&DBH{Seed: seed},
		&Mint{Seed: seed},
		&CLUGP{Seed: seed},
	}
}

// New constructs a partitioner by its evaluation name (case-sensitive,
// matching Name()), with default parameters.
func New(name string, seed uint64) (Partitioner, error) {
	switch name {
	case "Hashing":
		return &Hashing{Seed: seed}, nil
	case "DBH":
		return &DBH{Seed: seed}, nil
	case "Greedy":
		return &Greedy{}, nil
	case "HDRF":
		return &HDRF{}, nil
	case "Mint":
		return &Mint{Seed: seed}, nil
	case "CLUGP":
		return &CLUGP{Seed: seed}, nil
	case "CLUGP-S":
		// The Figure 9 clustering ablation: pass 1 is the literal Hollocou
		// allocation-migration algorithm (no splitting, no migration
		// discipline), with passes 2-3 unchanged.
		return &CLUGP{Seed: seed, DisableSplitting: true, MigrateMaxDegree: -1}, nil
	case "CLUGP-G":
		return &CLUGP{Seed: seed, GreedyAssign: true}, nil
	}
	return nil, fmt.Errorf("partition: unknown algorithm %q", name)
}

// Names lists every algorithm New accepts.
func Names() []string {
	return []string{"Hashing", "DBH", "Greedy", "HDRF", "Mint", "CLUGP", "CLUGP-S", "CLUGP-G"}
}
