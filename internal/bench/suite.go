package bench

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/stream"
)

// SuiteConfig describes one benchmark grid: every algorithm x dataset x
// k x seed cell is one partitioning run. The zero value is the full paper
// grid (six algorithms, five datasets, the k sweep, one seed) at scale 1.0.
type SuiteConfig struct {
	// Algorithms to run (partition.New names). Default: the six of the
	// paper's evaluation in plotting order.
	Algorithms []string
	// Datasets to run on (bench dataset names). Default: all five.
	Datasets []string
	// Ks is the partition-count sweep. Default: 4..256 in powers of two.
	Ks []int
	// Seeds replicates every cell once per seed. Default: {42}.
	Seeds []uint64
	// Scale multiplies dataset sizes (1.0 = default experiment size).
	Scale float64
	// Workers is the size of the worker pool; cells run concurrently on
	// that many goroutines. Default (and any value < 1): GOMAXPROCS.
	// Workers=1 is the serial reference; results are identical (runtimes
	// aside) for every worker count.
	Workers int
	// Streaming additionally measures the out-of-core streaming grid
	// (source backend x on-disk format: bytes/edge, decode throughput,
	// streaming CLUGP wall clock), the parallel-streaming scaling grid
	// (algorithm x decode workers) and the parallel-scoring scaling grid
	// (algorithm x score workers) - both scaling grids quality-gated
	// bit-identical to their serial cell - after the main grid. The cells
	// time wall clock, so they always run serially regardless of Workers.
	Streaming bool
	// StreamDatasets selects the datasets of the streaming grid. Empty
	// means the default clustered pair (UK, IT).
	StreamDatasets []string
	// ServeDatasets selects the datasets of the placement-service grid
	// (also gated by Streaming). Empty means the default (UK).
	ServeDatasets []string
	// Progress, when non-nil, receives one line per completed cell.
	Progress io.Writer
}

func (c SuiteConfig) withDefaults() SuiteConfig {
	if len(c.Algorithms) == 0 {
		c.Algorithms = append([]string(nil), algos...)
	}
	if len(c.Datasets) == 0 {
		for _, d := range Datasets() {
			c.Datasets = append(c.Datasets, d.Name)
		}
	}
	if len(c.Ks) == 0 {
		c.Ks = []int{4, 8, 16, 32, 64, 128, 256}
	}
	if len(c.Seeds) == 0 {
		c.Seeds = []uint64{42}
	}
	if c.Scale == 0 {
		c.Scale = 1.0
	}
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// cellJob is one grid point plus its prebuilt graph.
type cellJob struct {
	index     int
	algorithm string
	dataset   string
	g         *graph.Graph
	k         int
	seed      uint64
}

// RunSuite executes the grid serially (one worker). It is the reference
// RunSuiteParallel is measured against: quality metrics are identical for
// any worker count.
func RunSuite(cfg SuiteConfig) (*Report, error) {
	cfg = cfg.withDefaults()
	cfg.Workers = 1
	return RunSuiteParallel(cfg)
}

// RunSuiteParallel executes the algorithm x dataset x k x seed grid on a
// pool of cfg.Workers goroutines. Graphs are built once per dataset and
// shared read-only; stream orders are computed at most once per
// (graph, order, seed) via a shared stream.Cache instead of once per run.
// Cells land in the report in deterministic grid order, and every quality
// metric is bit-identical to the serial run - only the runtime fields vary
// with scheduling.
func RunSuiteParallel(cfg SuiteConfig) (*Report, error) {
	cfg = cfg.withDefaults()
	start := time.Now()

	// Validate the grid up front so workers cannot hit unknown names and
	// no graph or stream order is built for a run that must fail.
	for _, a := range cfg.Algorithms {
		if _, err := partition.New(a, cfg.Seeds[0]); err != nil {
			return nil, fmt.Errorf("bench: suite: %w", err)
		}
	}
	for _, k := range cfg.Ks {
		if k < 1 {
			return nil, fmt.Errorf("bench: suite: k must be >= 1, got %d", k)
		}
	}
	graphs := make(map[string]*graph.Graph, len(cfg.Datasets))
	for _, name := range cfg.Datasets {
		ds, err := DatasetByName(name)
		if err != nil {
			return nil, fmt.Errorf("bench: suite: %w", err)
		}
		g := ds.Build(cfg.Scale)
		graphs[name] = g
		suiteLogf(cfg, "suite: built %s (%d vertices, %d edges)", name, g.NumVertices, g.NumEdges())
	}

	// Grid order: dataset-major, then algorithm, k, seed - the order the
	// paper's figures sweep, and the order cells appear in the report.
	var jobs []cellJob
	for _, ds := range cfg.Datasets {
		for _, alg := range cfg.Algorithms {
			for _, k := range cfg.Ks {
				for _, seed := range cfg.Seeds {
					jobs = append(jobs, cellJob{
						index: len(jobs), algorithm: alg, dataset: ds,
						g: graphs[ds], k: k, seed: seed,
					})
				}
			}
		}
	}

	cache := stream.NewCache()
	cells := make([]Cell, len(jobs))
	errs := make([]error, len(jobs))
	trackAllocs := cfg.Workers == 1
	jobCh := make(chan cellJob)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range jobCh {
				cell, err := runCell(job, cache, trackAllocs)
				cells[job.index], errs[job.index] = cell, err
				if err == nil {
					suiteLogf(cfg, "  %-8s %-8s k=%-4d seed=%-4d RF=%.3f bal=%.3f t=%v",
						job.algorithm, job.dataset, job.k, job.seed,
						cell.ReplicationFactor, cell.RelativeBalance,
						time.Duration(cell.RuntimeNS).Round(time.Millisecond))
				}
			}
		}()
	}
	for _, job := range jobs {
		jobCh <- job
	}
	close(jobCh)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("bench: suite cell %s: %w", jobs[i].algorithm+"/"+jobs[i].dataset, err)
		}
	}
	var streamCells []StreamCell
	var parallelCells []ParallelCell
	var serveCells []ServeCell
	var scoreCells []ScoreCell
	var checkpointCells []CheckpointCell
	if cfg.Streaming {
		sc, err := runStreamCells(cfg)
		if err != nil {
			return nil, err
		}
		streamCells = sc
		pc, err := runParallelCells(cfg)
		if err != nil {
			return nil, err
		}
		parallelCells = pc
		vc, err := runServeCells(cfg)
		if err != nil {
			return nil, err
		}
		serveCells = vc
		oc, err := runScoreCells(cfg)
		if err != nil {
			return nil, err
		}
		scoreCells = oc
		kc, err := runCheckpointCells(cfg)
		if err != nil {
			return nil, err
		}
		checkpointCells = kc
	}
	return &Report{
		Experiment:        "suite",
		GoVersion:         runtime.Version(),
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		Workers:           cfg.Workers,
		Scale:             cfg.Scale,
		Algorithms:        cfg.Algorithms,
		Datasets:          cfg.Datasets,
		Ks:                cfg.Ks,
		Seeds:             cfg.Seeds,
		WallTimeNS:        time.Since(start).Nanoseconds(),
		StreamOrdersBuilt: cache.Builds(),
		Cells:             cells,
		StreamCells:       streamCells,
		ParallelCells:     parallelCells,
		ServeCells:        serveCells,
		ScoreCells:        scoreCells,
		CheckpointCells:   checkpointCells,
	}, nil
}

// runCell executes one grid point. Each cell constructs its own partitioner
// (they carry per-run state like CLUGP.LastTrace), so cells share nothing
// but the read-only graph and the stream cache.
//
// trackAllocs captures runtime.MemStats deltas around the run. The deltas
// are only attributable to the cell when no other cell runs concurrently,
// so the suite enables them for serial runs (Workers == 1). To make them
// deterministic - the point of gating on them - the automatic GC is
// disabled for the duration of the cell and the heap is settled with one
// forced collection first: GC pacing varies run to run and perturbs the
// counts by a handful of allocations (incremental map growth, goroutine
// reuse) when a cycle lands mid-cell.
func runCell(job cellJob, cache *stream.Cache, trackAllocs bool) (Cell, error) {
	p, err := partition.New(job.algorithm, job.seed)
	if err != nil {
		return Cell{}, err
	}
	var before runtime.MemStats
	if trackAllocs {
		gcPercent := debug.SetGCPercent(-1)
		defer debug.SetGCPercent(gcPercent)
		runtime.GC()
		runtime.ReadMemStats(&before)
	}
	res, err := partition.RunCached(p, job.g, job.k, job.seed, cache)
	if err != nil {
		return Cell{}, err
	}
	cell := Cell{
		Algorithm:         job.algorithm,
		Dataset:           job.dataset,
		K:                 job.k,
		Seed:              job.seed,
		Order:             res.Order.String(),
		Vertices:          job.g.NumVertices,
		Edges:             job.g.NumEdges(),
		ReplicationFactor: res.Quality.ReplicationFactor,
		RelativeBalance:   res.Quality.RelativeBalance,
		RuntimeNS:         res.Runtime.Nanoseconds(),
		StateBytes:        res.StateBytes,
	}
	if trackAllocs {
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		cell.Allocs = int64(after.Mallocs - before.Mallocs)
		cell.AllocBytes = int64(after.TotalAlloc - before.TotalAlloc)
	}
	return cell, nil
}

// suiteMu serializes progress lines from concurrent workers.
var suiteMu sync.Mutex

func suiteLogf(cfg SuiteConfig, format string, args ...any) {
	if cfg.Progress == nil {
		return
	}
	suiteMu.Lock()
	defer suiteMu.Unlock()
	fmt.Fprintf(cfg.Progress, format+"\n", args...)
}
