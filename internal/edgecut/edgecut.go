// Package edgecut implements the edge-cut (vertex partitioning) side of the
// paper's Section II-C comparison: streaming edge-cut partitioners (LDG,
// FENNEL, hash) and a METIS-style offline multilevel partitioner.
//
// Edge-cut partitioning assigns each VERTEX to exactly one partition and
// counts edges crossing partitions as the communication cost - the dual of
// the vertex-cut model the rest of this repository implements. The paper's
// argument (backed by percolation theory) is that power-law web graphs have
// good vertex-cuts but poor balanced edge-cuts; the CutVsReplication
// experiment in package bench quantifies that claim on our datasets.
package edgecut

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/stream"
)

// Partitioner assigns vertices to k partitions.
type Partitioner interface {
	// Name identifies the algorithm.
	Name() string
	// Partition returns one partition id per vertex.
	Partition(g *graph.Graph, k int) ([]int32, error)
}

// Quality summarises an edge-cut partitioning.
type Quality struct {
	K int
	// CutEdges is the number of edges whose endpoints sit in different
	// partitions.
	CutEdges int64
	// CutFraction is CutEdges / |E|.
	CutFraction float64
	// VertexSizes is the number of vertices per partition.
	VertexSizes []int64
	// VertexBalance is k * max(VertexSizes) / |V| (1.0 = perfect).
	VertexBalance float64
	// EdgeBalance is k * max(local edges) / |E|, where an edge is local to
	// its source's partition - the compute balance a vertex-centric system
	// would see.
	EdgeBalance float64
}

// Evaluate computes edge-cut quality for a vertex assignment.
func Evaluate(g *graph.Graph, assign []int32, k int) (*Quality, error) {
	return EvaluateStream(stream.Of(g.Edges).Source(g.NumVertices), assign, k)
}

// EvaluateStream is Evaluate over an edge source: the same quality numbers
// (cut size is order-independent) without requiring a *graph.Graph or a
// materialized edge slice, so the edge-cut family's quality can be scored
// against a file-backed stream. The argument order matches metrics.Evaluate
// (source, assignment, k); here assign is per-vertex rather than
// stream-aligned.
func EvaluateStream(src stream.Source, assign []int32, k int) (*Quality, error) {
	numVertices := src.NumVertices()
	if len(assign) != numVertices {
		return nil, fmt.Errorf("edgecut: %d assignments for %d vertices", len(assign), numVertices)
	}
	q := &Quality{K: k, VertexSizes: make([]int64, k)}
	for v, p := range assign {
		if p < 0 || int(p) >= k {
			return nil, fmt.Errorf("edgecut: vertex %d assigned to invalid partition %d", v, p)
		}
		q.VertexSizes[p]++
	}
	localEdges := make([]int64, k)
	err := stream.ForEach(src, func(_ int, blk []graph.Edge) error {
		for _, e := range blk {
			if assign[e.Src] != assign[e.Dst] {
				q.CutEdges++
			}
			localEdges[assign[e.Src]]++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if m := src.Len(); m > 0 {
		q.CutFraction = float64(q.CutEdges) / float64(m)
		var maxE int64
		for _, s := range localEdges {
			if s > maxE {
				maxE = s
			}
		}
		q.EdgeBalance = float64(k) * float64(maxE) / float64(m)
	}
	if numVertices > 0 {
		var maxV int64
		for _, sz := range q.VertexSizes {
			if sz > maxV {
				maxV = sz
			}
		}
		q.VertexBalance = float64(k) * float64(maxV) / float64(numVertices)
	}
	return q, nil
}

// Hash assigns each vertex by hashing its id - the edge-cut analogue of
// random edge placement.
type Hash struct {
	Seed uint64
}

// Name implements Partitioner.
func (h *Hash) Name() string { return "HashEC" }

// Partition implements Partitioner.
func (h *Hash) Partition(g *graph.Graph, k int) ([]int32, error) {
	if k < 1 {
		return nil, fmt.Errorf("edgecut: k must be >= 1, got %d", k)
	}
	assign := make([]int32, g.NumVertices)
	for v := range assign {
		assign[v] = int32(hash64(uint64(v)^h.Seed) % uint64(k))
	}
	return assign, nil
}

func hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
