package metrics

import (
	"fmt"
	"sync"

	"repro/internal/graph"
)

// obs is one batch broadcast to every shard worker: the edges and their
// partition assignments, valid only until the workers acknowledge.
type obs struct {
	edges  []graph.Edge
	assign []int32
}

// ParallelEvaluator accumulates partition quality like Evaluator, but its
// replica-table maintenance runs on a fleet of shard workers over a
// vertex-range ShardedReplicaSets: each worker owns a contiguous vertex
// range (one shard), scans every observed batch, and applies the replica
// and seen updates only for endpoints inside its range. Ownership is
// disjoint, so the workers share the table without locks, and every update
// is a commutative bitset OR, so the accumulated state - and the resulting
// Quality - is bit-identical to the serial Evaluator whatever the shard
// count or scheduling (held by TestParallelEvaluatorMatchesSerial and the
// -race suite).
//
// Observe is synchronous: it returns after every worker has finished the
// batch, so the caller's batch buffers can be recycled immediately -
// exactly the Emit contract of the out-of-core path, whose parallel mode
// (partition.RunOutOfCoreOpts with Workers > 1) is the intended caller.
// Like Evaluator, a ParallelEvaluator must be driven by one goroutine;
// the concurrency is internal.
type ParallelEvaluator struct {
	rs   ShardedReplicaSets
	seen []bool // shared storage; workers write disjoint index ranges

	k           int
	numVertices int
	sizes       []int64
	edges       int64

	in      []chan obs
	done    chan struct{}
	wg      sync.WaitGroup
	running bool
}

// Begin clears the evaluator for a stream over numVertices vertices and k
// partitions, and spawns one worker per shard. shards < 1 means 1. Every
// Begin must be paired with Finish (or Stop on error paths) to join the
// fleet.
func (ev *ParallelEvaluator) Begin(numVertices, k, shards int) {
	ev.Stop()
	ev.rs.Reset(numVertices, k, shards)
	if cap(ev.seen) < numVertices {
		ev.seen = make([]bool, numVertices)
	} else {
		ev.seen = ev.seen[:numVertices]
		clear(ev.seen)
	}
	ev.k = k
	ev.numVertices = numVertices
	ev.sizes = make([]int64, k)
	ev.edges = 0

	n := ev.rs.NumShards()
	ev.in = make([]chan obs, n)
	ev.done = make(chan struct{}, n)
	for i := 0; i < n; i++ {
		ev.in[i] = make(chan obs)
		ev.wg.Add(1)
		go ev.worker(i, ev.in[i])
	}
	ev.running = true
}

// worker applies shard i's slice of every batch: replica bits and seen
// marks for endpoints in [lo, hi), through the shard's own table.
func (ev *ParallelEvaluator) worker(i int, in chan obs) {
	defer ev.wg.Done()
	lo, hi := ev.rs.ShardRange(i)
	vlo, vhi := graph.VertexID(lo), graph.VertexID(hi)
	tab := ev.rs.Shard(i)
	seen := ev.seen
	for o := range in {
		for j, e := range o.edges {
			p := int(o.assign[j])
			if e.Src >= vlo && e.Src < vhi {
				tab.Add(e.Src-vlo, p)
				seen[e.Src] = true
			}
			if e.Dst >= vlo && e.Dst < vhi {
				tab.Add(e.Dst-vlo, p)
				seen[e.Dst] = true
			}
		}
		ev.done <- struct{}{}
	}
}

// Observe accumulates one run of streamed edges with their assignments. It
// validates and tallies partition sizes inline, broadcasts the batch to the
// shard workers, and returns once all of them have applied it.
func (ev *ParallelEvaluator) Observe(edges []graph.Edge, assign []int32) error {
	if len(edges) != len(assign) {
		return fmt.Errorf("metrics: observed %d edges with %d assignments", len(edges), len(assign))
	}
	sizes, k := ev.sizes, ev.k
	for i, p := range assign {
		if p < 0 || int(p) >= k {
			return fmt.Errorf("metrics: edge %d assigned to invalid partition %d (k=%d)", ev.edges+int64(i), p, k)
		}
		sizes[p]++
	}
	o := obs{edges: edges, assign: assign}
	for _, in := range ev.in {
		in <- o
	}
	for range ev.in {
		<-ev.done
	}
	ev.edges += int64(len(edges))
	return nil
}

// Finish joins the fleet and summarises everything observed since Begin.
func (ev *ParallelEvaluator) Finish() *Quality {
	ev.Stop()
	q := &Quality{K: ev.k, Sizes: ev.sizes, MinSize: int64(^uint64(0) >> 1)}
	for _, sz := range ev.sizes {
		if sz > q.MaxSize {
			q.MaxSize = sz
		}
		if sz < q.MinSize {
			q.MinSize = sz
		}
	}
	for i := 0; i < ev.rs.NumShards(); i++ {
		lo, hi := ev.rs.ShardRange(i)
		tab := ev.rs.Shard(i)
		for v := lo; v < hi; v++ {
			if !ev.seen[v] {
				continue
			}
			q.Vertices++
			q.Replicas += int64(tab.Count(graph.VertexID(v - lo)))
		}
	}
	if q.Vertices > 0 {
		q.ReplicationFactor = float64(q.Replicas) / float64(q.Vertices)
	}
	if ev.edges > 0 {
		q.RelativeBalance = float64(ev.k) * float64(q.MaxSize) / float64(ev.edges)
	}
	return q
}

// Stop joins the shard workers without producing a result - the error-path
// counterpart of Finish. Idempotent; safe on a zero-value evaluator.
func (ev *ParallelEvaluator) Stop() {
	if !ev.running {
		return
	}
	for _, in := range ev.in {
		close(in)
	}
	ev.wg.Wait()
	ev.in = nil
	ev.running = false
}
