package edgecut

import (
	"testing"

	"repro/internal/gen"
)

func TestRestreamImprovesOverSinglePass(t *testing.T) {
	// A harder graph (weaker locality) leaves the single pass real headroom.
	g := gen.Web(gen.WebConfig{N: 2000, OutDegree: 6, IntraSite: 0.6, SiteMean: 40, Seed: 7})
	k := 8
	for _, inner := range []string{"LDG", "FENNEL"} {
		single, err := (&Restream{Inner: inner, Passes: 1}).Partition(g, k)
		if err != nil {
			t.Fatal(err)
		}
		qs, err := Evaluate(g, single, k)
		if err != nil {
			t.Fatal(err)
		}
		multi, err := (&Restream{Inner: inner, Passes: 6}).Partition(g, k)
		if err != nil {
			t.Fatal(err)
		}
		qm, err := Evaluate(g, multi, k)
		if err != nil {
			t.Fatal(err)
		}
		if qm.CutFraction > qs.CutFraction {
			t.Fatalf("Re%s: restreaming worsened the cut: %.3f -> %.3f", inner, qs.CutFraction, qm.CutFraction)
		}
		// FENNEL has real headroom after one pass; LDG's strict capacity
		// leaves little (restreaming must still never hurt it, above).
		if inner == "FENNEL" && qm.CutFraction > 0.9*qs.CutFraction {
			t.Fatalf("ReFENNEL improvement too small: %.3f -> %.3f", qs.CutFraction, qm.CutFraction)
		}
	}
}

func TestRestreamValidAndBalanced(t *testing.T) {
	g := blockGraph(30, 30, 8)
	k := 6
	for _, inner := range []string{"LDG", "FENNEL"} {
		assign, err := (&Restream{Inner: inner}).Partition(g, k)
		if err != nil {
			t.Fatal(err)
		}
		q, err := Evaluate(g, assign, k)
		if err != nil {
			t.Fatal(err)
		}
		if q.VertexBalance > 1.5 {
			t.Fatalf("Re%s balance %.3f too loose", inner, q.VertexBalance)
		}
	}
}

func TestRestreamName(t *testing.T) {
	if (&Restream{}).Name() != "ReLDG" {
		t.Fatal("default name wrong")
	}
	if (&Restream{Inner: "FENNEL"}).Name() != "ReFENNEL" {
		t.Fatal("fennel name wrong")
	}
}

func TestRestreamRejectsUnknownInner(t *testing.T) {
	g := blockGraph(5, 10, 9)
	if _, err := (&Restream{Inner: "nope"}).Partition(g, 2); err == nil {
		t.Fatal("unknown inner accepted")
	}
	if _, err := (&Restream{}).Partition(g, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestRestreamDeterministic(t *testing.T) {
	// Restreaming dynamics may oscillate (the framework runs a fixed pass
	// budget, not to convergence), but equal budgets must give equal
	// results.
	g := blockGraph(20, 25, 10)
	a, err := (&Restream{Passes: 7}).Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (&Restream{Passes: 7}).Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("restreaming nondeterministic at vertex %d", v)
		}
	}
}
