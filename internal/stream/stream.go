// Package stream implements the edge-streaming graph model of the paper
// (Definition 1): edges of a graph arrive sequentially in a chosen order and
// may be replayed for multi-pass ("restreaming") algorithms.
//
// The paper evaluates each partitioner under its best-performing order:
// random for Hashing/DBH/Greedy/HDRF and BFS (the natural crawl order of web
// graphs) for Mint and CLUGP.
//
// Orders are represented as permutation Views over the graph's own edge
// slice rather than reordered copies: a View is the base slice plus an
// optional []int32 permutation, so materializing an order costs 4 bytes per
// edge instead of 8 and replaying a stream copies nothing. Shared, cached
// orders are structurally immutable: a View hands out edge values, never
// slice access.
//
// Consumers do not take Views directly: every per-edge loop in the
// repository (the partitioners, the CLUGP passes, the quality metrics)
// consumes the Source interface - a sequential, replayable edge stream
// delivered in blocks - for which View.Source is the trivially-satisfying
// in-memory adapter and package store provides the file-backed, out-of-core
// implementation.
package stream

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// Order selects the arrival order of the edge stream.
type Order int

const (
	// Natural preserves the order edges were generated or loaded in.
	Natural Order = iota
	// BFS reorders edges as a breadth-first crawl would discover them:
	// vertices are visited in BFS order over the underlying undirected
	// graph, and each vertex emits its incident not-yet-emitted edges when
	// visited. This is the order real web crawls approximate (Section II).
	BFS
	// DFS is the depth-first analogue of BFS, for order-sensitivity studies.
	DFS
	// Random applies a seeded Fisher-Yates shuffle.
	Random
)

func (o Order) String() string {
	switch o {
	case Natural:
		return "natural"
	case BFS:
		return "bfs"
	case DFS:
		return "dfs"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("order(%d)", int(o))
	}
}

// ParseOrder converts a name produced by Order.String back to an Order.
func ParseOrder(s string) (Order, error) {
	switch s {
	case "natural":
		return Natural, nil
	case "bfs":
		return BFS, nil
	case "dfs":
		return DFS, nil
	case "random":
		return Random, nil
	}
	return Natural, fmt.Errorf("stream: unknown order %q", s)
}

// View is a read-only, zero-copy view of an ordered edge stream: a base edge
// slice plus an optional permutation. A nil permutation is the natural
// order, aliasing the base storage directly. Views are values; copying one
// copies two slice headers, never edges.
//
// The i-th streamed edge is At(i). Consumers must not retain or mutate
// anything reachable from a View: the base slice is typically the graph's
// own storage, and cached permutations are shared by every run that streams
// the same order.
type View struct {
	base []graph.Edge
	perm []int32
}

// Of returns the natural-order view of an edge slice, sharing its storage.
func Of(edges []graph.Edge) View { return View{base: edges} }

// Permuted returns a view of edges in the order perm[0], perm[1], ...
// A nil perm is the natural order. len(perm) may be shorter than the base
// slice (a sub-stream); every entry must index into edges.
func Permuted(edges []graph.Edge, perm []int32) View {
	return View{base: edges, perm: perm}
}

// Len returns the number of edges in the stream.
func (v View) Len() int {
	if v.perm != nil {
		return len(v.perm)
	}
	return len(v.base)
}

// At returns the i-th edge of the stream. The two-way branch predicts
// perfectly inside a loop, so indexed iteration over a View costs one bounds
// check over the natural order.
func (v View) At(i int) graph.Edge {
	if v.perm == nil {
		return v.base[i]
	}
	return v.base[v.perm[i]]
}

// Perm exposes the permutation (nil for natural order). Callers must treat
// it as read-only; it is shared with every other view of the same order.
func (v View) Perm() []int32 { return v.perm }

// Slice returns the sub-stream [lo, hi) as a view sharing this view's
// storage.
func (v View) Slice(lo, hi int) View {
	if v.perm != nil {
		return View{base: v.base, perm: v.perm[lo:hi]}
	}
	return View{base: v.base[lo:hi]}
}

// Materialize returns the stream as a freshly allocated edge slice in view
// order. It exists for interop (writing edge lists, hand-building graphs);
// the hot paths iterate the view directly.
func (v View) Materialize() []graph.Edge {
	out := make([]graph.Edge, v.Len())
	for i := range out {
		out[i] = v.At(i)
	}
	return out
}

// OrderBytes is the memory this view's ordering occupies beyond the base
// edge slice: 4 bytes per edge for a permuted order, 0 for natural. The
// pre-View representation copied the edges themselves at 8 bytes each; the
// cache-memory test pins the halving.
func (v View) OrderBytes() int64 {
	return int64(len(v.perm)) * 4
}

// MaxLen is the largest edge count a permutation View can index:
// permutations use int32 entries (half the footprint of int64). Callers
// with an error path (partition.Run, core.Run) reject longer inputs via
// CheckLen up front; NewView itself panics past the limit, since a silent
// truncation would be worse.
const MaxLen = math.MaxInt32

// CheckLen returns an error when an edge count exceeds MaxLen. Entry
// points that order streams call it before NewView so oversized graphs
// surface as errors instead of panics.
func CheckLen(n int) error {
	if n > MaxLen {
		return fmt.Errorf("stream: %d edges exceed the %d permutation limit", n, MaxLen)
	}
	return nil
}

// NewView returns the graph's edges arranged in the requested order as a
// zero-copy view: Natural aliases the graph's storage, every other order
// builds a []int32 permutation over it. seed only affects Random.
// Graphs beyond MaxLen edges panic; guard with MaxLen where an error
// return is wanted.
func NewView(g *graph.Graph, order Order, seed uint64) View {
	if len(g.Edges) > MaxLen {
		panic(fmt.Sprintf("stream: %d edges exceed the 2^31-1 permutation limit", len(g.Edges)))
	}
	switch order {
	case Natural:
		return Of(g.Edges)
	case Random:
		perm := make([]int32, len(g.Edges))
		for i := range perm {
			perm[i] = int32(i)
		}
		rng := xrand.New(seed)
		for i := len(perm) - 1; i > 0; i-- {
			j := int(rng.Uint64n(uint64(i + 1)))
			perm[i], perm[j] = perm[j], perm[i]
		}
		return Permuted(g.Edges, perm)
	case BFS:
		return Permuted(g.Edges, traversalOrder(g, false))
	case DFS:
		return Permuted(g.Edges, traversalOrder(g, true))
	default:
		panic(fmt.Sprintf("stream: unknown order %d", int(order)))
	}
}

// Edges returns the graph's edges arranged in the requested order as a
// slice: Natural aliases the graph's own storage, every other order is a
// fresh copy. Prefer NewView, which never copies; Edges remains for interop
// with []graph.Edge consumers.
func Edges(g *graph.Graph, order Order, seed uint64) []graph.Edge {
	v := NewView(g, order, seed)
	if v.perm == nil {
		return v.base
	}
	return v.Materialize()
}

// traversalOrder emits edge indices in the order a BFS (or DFS) crawl over
// the undirected graph would first touch them. Each directed edge is emitted
// exactly once, when the traversal visits either endpoint. Disconnected
// components are started from the smallest unvisited vertex, matching how a
// crawler restarts from a new seed page.
func traversalOrder(g *graph.Graph, depthFirst bool) []int32 {
	n := g.NumVertices
	// Build an undirected CSR carrying original edge indices so each edge is
	// emitted once regardless of which endpoint is visited first.
	type half struct {
		to  graph.VertexID
		eid int32
	}
	off := make([]int64, n+1)
	for _, e := range g.Edges {
		off[e.Src+1]++
		off[e.Dst+1]++
	}
	for i := 0; i < n; i++ {
		off[i+1] += off[i]
	}
	adj := make([]half, 2*len(g.Edges))
	cursor := make([]int64, n)
	copy(cursor, off[:n])
	for i, e := range g.Edges {
		adj[cursor[e.Src]] = half{to: e.Dst, eid: int32(i)}
		cursor[e.Src]++
		adj[cursor[e.Dst]] = half{to: e.Src, eid: int32(i)}
		cursor[e.Dst]++
	}

	perm := make([]int32, 0, len(g.Edges))
	emitted := make([]bool, len(g.Edges))
	visited := make([]bool, n)
	// frontier doubles as queue (BFS) or stack (DFS).
	frontier := make([]graph.VertexID, 0, 1024)
	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		visited[start] = true
		frontier = append(frontier[:0], graph.VertexID(start))
		for len(frontier) > 0 {
			var v graph.VertexID
			if depthFirst {
				v = frontier[len(frontier)-1]
				frontier = frontier[:len(frontier)-1]
			} else {
				v = frontier[0]
				frontier = frontier[1:]
			}
			for _, h := range adj[off[v]:off[v+1]] {
				if !emitted[h.eid] {
					emitted[h.eid] = true
					perm = append(perm, h.eid)
				}
				if !visited[h.to] {
					visited[h.to] = true
					frontier = append(frontier, h.to)
				}
			}
		}
	}
	return perm
}
