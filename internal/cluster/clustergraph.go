package cluster

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/stream"
)

// Arc is one weighted inter-cluster adjacency entry. W counts directed
// edges in both directions between the two clusters, i.e.
// |e(ci,cj)| + |e(cj,ci)|, which is exactly the quantity the game's
// edge-cutting cost sums over (Equation 11).
type Arc struct {
	To ID
	W  int64
}

// Graph is the cluster-level view built by re-streaming the edges once the
// vertex->cluster table is final. It is the sole input of the second pass.
type Graph struct {
	// NumClusters is the number of (compacted) clusters.
	NumClusters int
	// Intra[c] is |c|: the number of edges with both endpoints in c.
	Intra []int64
	// Adj[c] lists c's inter-cluster arcs, sorted by To. All rows share one
	// flat backing array (a CSR layout); treat them as read-only.
	Adj [][]Arc
	// AdjTotal[c] is the summed arc weight of c: |e(c,V\c)| + |e(V\c,c)|.
	AdjTotal []int64
	// Weight[c] = 2*Intra[c] + AdjTotal[c] is c's share of edge endpoints:
	// an intra edge contributes 2 to its cluster, a crossing edge 1 to each
	// side, so weights sum to 2|E|. The partitioning game balances this
	// quantity because it predicts the final per-partition edge load after
	// the transformation pass (each partition receives its clusters' intra
	// edges plus roughly half of their cut edges).
	Weight []int64
	// TotalIntra is the sum of Intra.
	TotalIntra int64
	// TotalInter is the number of directed edges crossing clusters
	// (each counted once), i.e. sum over clusters of |e(ci, V\ci)|.
	TotalInter int64
}

// BuildGraph aggregates the edge source into the cluster graph using the
// final assignments in res. res must be compacted first (every edge
// endpoint assigned, ids dense).
//
// The build is a two-pass counting-sort CSR construction: crossing edges
// are packed into (lo,hi) cluster-pair keys, radix-sorted by counting sort
// (stable, two O(|E|+m) passes), and aggregated runs are scattered into one
// flat arc array that every Adj row slices. No maps, no comparison sort,
// and a bounded number of allocations regardless of edge count - the former
// map+sort.Slice build allocated per pair bucket and per comparison
// closure, which dominated CLUGP's allocation profile. The source is
// streamed twice (replayable by contract), so peak memory is the packed
// crossing-pair array, not the edge list.
func BuildGraph(src stream.Source, res *Result) (*Graph, error) {
	m := res.NumClusters
	cg := &Graph{
		NumClusters: m,
		Intra:       make([]int64, m),
		Adj:         make([][]Arc, m),
		AdjTotal:    make([]int64, m),
		Weight:      make([]int64, m),
	}

	// Pass 1: intra counts and the number of crossing edges.
	var crossing int
	err := stream.ForEach(src, func(_ int, blk []graph.Edge) error {
		for _, e := range blk {
			cu := res.Assign[e.Src]
			cv := res.Assign[e.Dst]
			if cu == None || cv == None {
				return fmt.Errorf("cluster: edge %d->%d has unclustered endpoint", e.Src, e.Dst)
			}
			if cu == cv {
				cg.Intra[cu]++
				cg.TotalIntra++
			} else {
				crossing++
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	cg.TotalInter = int64(crossing)
	if crossing == 0 {
		for c := 0; c < m; c++ {
			cg.Weight[c] = 2 * cg.Intra[c]
		}
		return cg, nil
	}

	// Pass 2: pack each crossing edge as a (lo,hi) cluster-pair key.
	pairs := make([]uint64, 0, crossing)
	err = stream.ForEach(src, func(_ int, blk []graph.Edge) error {
		for _, e := range blk {
			cu := res.Assign[e.Src]
			cv := res.Assign[e.Dst]
			if cu == cv {
				continue
			}
			lo, hi := cu, cv
			if lo > hi {
				lo, hi = hi, lo
			}
			pairs = append(pairs, uint64(uint32(lo))<<32|uint64(uint32(hi)))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Stable LSD radix sort on the two cluster-id digits: counting-sort by
	// hi, then by lo, leaves pairs sorted lexicographically by (lo,hi).
	tmp := make([]uint64, len(pairs))
	cnt := make([]int32, m+1)
	countingSortByDigit(pairs, tmp, cnt, 0)  // by hi
	countingSortByDigit(tmp, pairs, cnt, 32) // by lo

	// Scan the sorted runs once to size each cluster's arc row (one arc per
	// side per distinct pair), then prefix-sum into CSR offsets.
	for i := range cnt {
		cnt[i] = 0
	}
	arcs := 0
	for i := 0; i < len(pairs); {
		j := i + 1
		for j < len(pairs) && pairs[j] == pairs[i] {
			j++
		}
		lo := ID(pairs[i] >> 32)
		hi := ID(pairs[i] & 0xffffffff)
		cnt[lo]++
		cnt[hi]++
		arcs += 2
		i = j
	}
	// Offsets and cursors are int32 like the per-cluster counts; the total
	// arc count must fit or the prefix sums wrap. Unreachable below ~1B
	// distinct crossing pairs (a 34 GB arc array), but fail loudly rather
	// than scatter to wrong rows.
	if arcs > math.MaxInt32 {
		return nil, fmt.Errorf("cluster: %d arcs exceed the CSR index limit of %d", arcs, math.MaxInt32)
	}
	off := make([]int32, m+1)
	for c := 0; c < m; c++ {
		off[c+1] = off[c] + cnt[c]
	}
	flat := make([]Arc, arcs)
	cursor := cnt // reuse as the scatter cursor
	copy(cursor, off[:m])

	// Scatter in two ordered sweeps so every row ends up sorted by To: the
	// first places each pair's To-below-self arc (hi's row gets lo, and los
	// arrive ascending for a fixed hi because the iteration is lo-major),
	// the second places the To-above-self arcs (lo's row gets hi, ascending
	// for a fixed lo). All below-self arcs precede all above-self arcs in a
	// row, which is exactly ascending To order.
	for i := 0; i < len(pairs); {
		j := i + 1
		for j < len(pairs) && pairs[j] == pairs[i] {
			j++
		}
		lo := ID(pairs[i] >> 32)
		hi := ID(pairs[i] & 0xffffffff)
		flat[cursor[hi]] = Arc{To: lo, W: int64(j - i)}
		cursor[hi]++
		i = j
	}
	for i := 0; i < len(pairs); {
		j := i + 1
		for j < len(pairs) && pairs[j] == pairs[i] {
			j++
		}
		lo := ID(pairs[i] >> 32)
		hi := ID(pairs[i] & 0xffffffff)
		flat[cursor[lo]] = Arc{To: hi, W: int64(j - i)}
		cursor[lo]++
		i = j
	}

	for c := 0; c < m; c++ {
		row := flat[off[c]:off[c+1]]
		if len(row) > 0 {
			cg.Adj[c] = row
		}
		var t int64
		for _, a := range row {
			t += a.W
		}
		cg.AdjTotal[c] = t
		cg.Weight[c] = 2*cg.Intra[c] + t
	}
	return cg, nil
}

// countingSortByDigit stable-sorts src into dst by the 32-bit digit at the
// given shift (cluster ids, so values are < len(cnt)-1). cnt is caller
// scratch of length m+1; it is cleared before use.
func countingSortByDigit(src, dst []uint64, cnt []int32, shift uint) {
	for i := range cnt {
		cnt[i] = 0
	}
	for _, p := range src {
		cnt[uint32(p>>shift)+1]++
	}
	for i := 1; i < len(cnt); i++ {
		cnt[i] += cnt[i-1]
	}
	for _, p := range src {
		d := uint32(p >> shift)
		dst[cnt[d]] = p
		cnt[d]++
	}
}

// ArcWeight returns the symmetric inter-cluster weight between a and b
// (0 if not adjacent), by binary search over a's sorted arcs.
func (g *Graph) ArcWeight(a, b ID) int64 {
	arcs := g.Adj[a]
	i := sort.Search(len(arcs), func(i int) bool { return arcs[i].To >= b })
	if i < len(arcs) && arcs[i].To == b {
		return arcs[i].W
	}
	return 0
}

// TotalAdjacency returns the sum of c's arc weights: |e(c,V\c)|+|e(V\c,c)|.
func (g *Graph) TotalAdjacency(c ID) int64 {
	if g.AdjTotal != nil {
		return g.AdjTotal[c]
	}
	var t int64
	for _, a := range g.Adj[c] {
		t += a.W
	}
	return t
}

// TotalWeight returns the sum of cluster weights, 2*TotalIntra+2*TotalInter
// = 2|E|.
func (g *Graph) TotalWeight() int64 {
	return 2*g.TotalIntra + 2*g.TotalInter
}

// WeightOf returns Weight[c], computing it on the fly for hand-built graphs
// that did not pass through BuildGraph.
func (g *Graph) WeightOf(c ID) int64 {
	if g.Weight != nil {
		return g.Weight[c]
	}
	return 2*g.Intra[c] + g.TotalAdjacency(c)
}
