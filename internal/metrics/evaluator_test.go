package metrics

import (
	"math"
	"math/rand/v2"
	"sync"
	"testing"

	"repro/internal/graph"
)

// randAssigned builds a random edge stream over n vertices with a random
// assignment into k partitions.
func randAssigned(rng *rand.Rand, n, k, m int) ([]graph.Edge, []int32) {
	edges := make([]graph.Edge, m)
	assign := make([]int32, m)
	for i := range edges {
		edges[i] = graph.Edge{Src: graph.VertexID(rng.IntN(n)), Dst: graph.VertexID(rng.IntN(n))}
		assign[i] = int32(rng.IntN(k))
	}
	return edges, assign
}

func qualityEqual(a, b *Quality) bool {
	if a.K != b.K || a.MaxSize != b.MaxSize || a.MinSize != b.MinSize ||
		a.Vertices != b.Vertices || a.Replicas != b.Replicas ||
		a.ReplicationFactor != b.ReplicationFactor || a.RelativeBalance != b.RelativeBalance {
		return false
	}
	if len(a.Sizes) != len(b.Sizes) {
		return false
	}
	for i := range a.Sizes {
		if a.Sizes[i] != b.Sizes[i] {
			return false
		}
	}
	return true
}

// TestEvaluatorValueCopySharesScratch documents the latent scratch-reuse
// hazard the Evaluator doc warns about: a value copy aliases the bitset, so
// driving the copy corrupts the original. The test pins the aliasing (not a
// blessed behaviour - a tripwire so a future fix updates the docs too).
func TestEvaluatorValueCopySharesScratch(t *testing.T) {
	var ev Evaluator
	ev.Begin(8, 4)
	cp := ev // the hazardous value copy
	if err := cp.Observe([]graph.Edge{{Src: 1, Dst: 2}}, []int32{3}); err != nil {
		t.Fatal(err)
	}
	// The copy's write is visible through the original: shared storage.
	if !ev.rs.Has(1, 3) || !ev.seen[2] {
		t.Fatal("value copy no longer shares scratch; update the Evaluator docs and this test")
	}
	// Clone must not alias.
	cl := ev.Clone()
	if err := cl.Observe([]graph.Edge{{Src: 5, Dst: 6}, {Src: 0, Dst: 7}}, []int32{0, 1}); err != nil {
		t.Fatal(err)
	}
	if ev.rs.Has(5, 0) || ev.seen[6] {
		t.Fatal("Clone shares replica scratch with the original")
	}
	if ev.sizes[0] != 0 {
		t.Fatal("Clone shares size counters with the original")
	}
}

// TestEvaluatorCloneIndependent: a clone carries the accumulated state and
// then diverges freely - two clones driven with the same suffix from the
// same prefix produce identical Quality, concurrently and race-free.
func TestEvaluatorCloneIndependent(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 29))
	const n, k = 200, 70 // k > 64: multi-word clone path
	prefixE, prefixA := randAssigned(rng, n, k, 500)
	suffixE, suffixA := randAssigned(rng, n, k, 500)

	var base Evaluator
	base.Begin(n, k)
	if err := base.Observe(prefixE, prefixA); err != nil {
		t.Fatal(err)
	}
	clones := []*Evaluator{base.Clone(), base.Clone(), base.Clone()}
	var wg sync.WaitGroup
	for _, c := range clones {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := c.Observe(suffixE, suffixA); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	want := clones[0].Finish()
	for _, c := range clones[1:] {
		if got := c.Finish(); !qualityEqual(want, got) {
			t.Fatalf("clones diverged: %+v vs %+v", want, got)
		}
	}
	// The original never saw the suffix.
	if got := base.Finish(); got.Replicas >= want.Replicas && got.MaxSize == want.MaxSize && got.Vertices == want.Vertices {
		t.Fatalf("original tracked the clones' updates: %+v", got)
	}
}

// TestParallelEvaluatorMatchesSerial: for every shard count, the sharded
// fleet produces a Quality bit-identical to the serial Evaluator over the
// same observations - the determinism claim of the parallel hot pass.
func TestParallelEvaluatorMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 37))
	for _, tc := range []struct{ n, k, m int }{
		{1, 1, 10},
		{50, 4, 1000},
		{257, 66, 3000}, // k > 64, n not divisible by typical shard counts
	} {
		var serial Evaluator
		edges, assign := randAssigned(rng, tc.n, tc.k, tc.m)
		serial.Begin(tc.n, tc.k)
		for off := 0; off < tc.m; off += 128 {
			end := min(off+128, tc.m)
			if err := serial.Observe(edges[off:end], assign[off:end]); err != nil {
				t.Fatal(err)
			}
		}
		want := serial.Finish()
		for _, shards := range []int{1, 2, 4, 7, 64} {
			var par ParallelEvaluator
			par.Begin(tc.n, tc.k, shards)
			for off := 0; off < tc.m; off += 128 {
				end := min(off+128, tc.m)
				if err := par.Observe(edges[off:end], assign[off:end]); err != nil {
					t.Fatal(err)
				}
			}
			got := par.Finish()
			if !qualityEqual(want, got) {
				t.Fatalf("n=%d k=%d shards=%d: %+v vs serial %+v", tc.n, tc.k, shards, got, want)
			}
			if math.Abs(got.ReplicationFactor-want.ReplicationFactor) != 0 {
				t.Fatalf("RF not bit-identical")
			}
		}
	}
}

// TestParallelEvaluatorRejects: invalid assignments error without wedging
// the fleet, and the evaluator survives Begin/Stop/Finish cycling.
func TestParallelEvaluatorRejects(t *testing.T) {
	var par ParallelEvaluator
	par.Begin(10, 2, 4)
	if err := par.Observe([]graph.Edge{{Src: 1, Dst: 2}}, []int32{5}); err == nil {
		t.Fatal("out-of-range partition accepted")
	}
	if err := par.Observe([]graph.Edge{{Src: 1, Dst: 2}}, []int32{1, 0}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	par.Stop()
	par.Stop() // idempotent
	par.Begin(10, 2, 4)
	if err := par.Observe([]graph.Edge{{Src: 3, Dst: 4}}, []int32{1}); err != nil {
		t.Fatal(err)
	}
	q := par.Finish()
	if q.Vertices != 2 || q.Replicas != 2 {
		t.Fatalf("after restart: %+v", q)
	}
	// Finish on a never-begun evaluator must not panic.
	var zero ParallelEvaluator
	_ = zero.Finish()
}

// TestParallelEvaluatorStress hammers the shard fleet with many small
// batches and reused buffers across random shard counts - the -race
// workload for the shared seen slice and per-shard tables.
func TestParallelEvaluatorStress(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 43))
	const n, k = 500, 9
	edgeBuf := make([]graph.Edge, 64)
	assignBuf := make([]int32, 64)
	for round := 0; round < 20; round++ {
		var par ParallelEvaluator
		par.Begin(n, k, 1+rng.IntN(12))
		total := 0
		for b := 0; b < 50; b++ {
			sz := 1 + rng.IntN(64)
			for i := 0; i < sz; i++ {
				edgeBuf[i] = graph.Edge{Src: graph.VertexID(rng.IntN(n)), Dst: graph.VertexID(rng.IntN(n))}
				assignBuf[i] = int32(rng.IntN(k))
			}
			if err := par.Observe(edgeBuf[:sz], assignBuf[:sz]); err != nil {
				t.Fatal(err)
			}
			total += sz
		}
		q := par.Finish()
		var sum int64
		for _, s := range q.Sizes {
			sum += s
		}
		if sum != int64(total) {
			t.Fatalf("round %d: sizes sum %d, observed %d edges", round, sum, total)
		}
	}
}
