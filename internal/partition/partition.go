// Package partition implements the vertex-cut streaming partitioners
// evaluated in the paper (Table I): Hashing, DBH, Greedy, HDRF, Mint and
// CLUGP, plus the CLUGP-S / CLUGP-G ablation variants of Figure 9, all
// behind one interface.
//
// A vertex-cut partitioner assigns every streamed edge to exactly one of k
// partitions; quality is measured by the replication factor and relative
// load balance of Section II-B (package metrics).
//
// Partitioners consume the stream as a zero-copy stream.View and may keep
// reusable scratch between runs (see PartitionInto); a single Partitioner
// value is therefore not safe for concurrent use. Construct one per
// goroutine - they are cheap, all state is scratch.
package partition

import (
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/stream"
)

// Partitioner assigns streamed edges to k partitions.
type Partitioner interface {
	// Name identifies the algorithm in experiment output.
	Name() string
	// PreferredOrder is the stream order the algorithm performs best under;
	// the paper grants each competitor its best order (random for the
	// one-pass heuristics and hashes, BFS for Mint and CLUGP).
	PreferredOrder() stream.Order
	// Partition consumes the edge stream (possibly in multiple passes) and
	// returns one partition id per edge, aligned with the stream.
	Partition(s stream.View, numVertices, k int) ([]int32, error)
}

// IntoPartitioner is implemented by partitioners whose hot loop is
// allocation-free: PartitionInto writes the assignment into a caller-owned
// slice and reuses the partitioner's internal scratch (replica bitsets,
// degree tables, load counters) across calls. It is the repeated-run API
// the benchmarks and the suite lean on; Partition remains the convenient
// one-shot form.
type IntoPartitioner interface {
	// PartitionInto partitions the stream into assign, which must have
	// length s.Len().
	PartitionInto(s stream.View, numVertices, k int, assign []int32) error
}

// StateSizer is implemented by partitioners that can report the peak size
// in bytes of their internal state for the memory-cost comparison
// (Figure 6). The estimate covers algorithm state only, not the input
// stream or the output assignment, mirroring how the paper attributes
// memory.
type StateSizer interface {
	StateBytes(numVertices, numEdges, k int) int64
}

// Result bundles a finished run: the ordered stream that was partitioned,
// its assignment, quality metrics and bookkeeping.
type Result struct {
	Algorithm   string
	Order       stream.Order
	K           int
	NumVertices int
	// Stream is the ordered edge stream that was partitioned; Assign is
	// aligned with it (Assign[i] is the partition of Stream.At(i)).
	Stream     stream.View
	Assign     []int32
	Quality    *metrics.Quality
	Runtime    time.Duration
	StateBytes int64
}

// Run orders the graph's edges per the partitioner's preference, times the
// partitioning pass(es) and evaluates quality. seed feeds the random stream
// order only; partitioner-internal seeds are part of their construction.
func Run(p Partitioner, g *graph.Graph, k int, seed uint64) (*Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("partition: k must be >= 1, got %d", k)
	}
	if err := stream.CheckLen(len(g.Edges)); err != nil {
		return nil, fmt.Errorf("partition: %w", err)
	}
	order := p.PreferredOrder()
	return RunStreamed(p, stream.NewView(g, order, seed), order, g.NumVertices, k)
}

// RunCached is Run with the stream order served from c, so repeated runs
// over the same graph (the experiment-suite hot path) reuse one ordered
// permutation instead of re-materializing it per run. A nil cache falls
// back to Run.
func RunCached(p Partitioner, g *graph.Graph, k int, seed uint64, c *stream.Cache) (*Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("partition: k must be >= 1, got %d", k)
	}
	if c == nil {
		return Run(p, g, k, seed)
	}
	if err := stream.CheckLen(len(g.Edges)); err != nil {
		return nil, fmt.Errorf("partition: %w", err)
	}
	order := p.PreferredOrder()
	return RunStreamed(p, c.View(g, order, seed), order, g.NumVertices, k)
}

// RunStreamed partitions an already-ordered edge stream, timing the
// partitioning pass(es) and evaluating quality. order records how the view
// was produced; it is bookkeeping only and does not reorder anything.
func RunStreamed(p Partitioner, s stream.View, order stream.Order, numVertices, k int) (*Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("partition: k must be >= 1, got %d", k)
	}
	start := time.Now()
	assign, err := p.Partition(s, numVertices, k)
	elapsed := time.Since(start)
	if err != nil {
		return nil, fmt.Errorf("partition: %s: %w", p.Name(), err)
	}
	if len(assign) != s.Len() {
		return nil, fmt.Errorf("partition: %s returned %d assignments for %d edges", p.Name(), len(assign), s.Len())
	}
	q, err := metrics.Evaluate(s, assign, numVertices, k)
	if err != nil {
		return nil, fmt.Errorf("partition: %s: %w", p.Name(), err)
	}
	res := &Result{
		Algorithm:   p.Name(),
		Order:       order,
		K:           k,
		NumVertices: numVertices,
		Stream:      s,
		Assign:      assign,
		Quality:     q,
		Runtime:     elapsed,
	}
	if s2, ok := p.(StateSizer); ok {
		res.StateBytes = s2.StateBytes(numVertices, s.Len(), k)
	}
	return res, nil
}

// partitionVia implements the one-shot Partition in terms of an
// allocation-free PartitionInto.
func partitionVia(p IntoPartitioner, s stream.View, numVertices, k int) ([]int32, error) {
	assign := make([]int32, s.Len())
	if err := p.PartitionInto(s, numVertices, k, assign); err != nil {
		return nil, err
	}
	return assign, nil
}

// checkInto validates the common PartitionInto preconditions.
func checkInto(s stream.View, k int, assign []int32) error {
	if k < 1 {
		return fmt.Errorf("partition: k must be >= 1, got %d", k)
	}
	if len(assign) != s.Len() {
		return fmt.Errorf("partition: assign has length %d, stream has %d edges", len(assign), s.Len())
	}
	return nil
}

// leastLoaded returns the partition with the smallest size among candidates
// (ties to the earliest candidate). candidates must be non-empty.
func leastLoaded(sizes []int64, candidates []int32) int32 {
	best := candidates[0]
	for _, p := range candidates[1:] {
		if sizes[p] < sizes[best] {
			best = p
		}
	}
	return best
}

// leastLoadedAll returns the globally least-loaded partition.
func leastLoadedAll(sizes []int64) int32 {
	best := int32(0)
	for p := int32(1); p < int32(len(sizes)); p++ {
		if sizes[p] < sizes[best] {
			best = p
		}
	}
	return best
}
