package faultfs

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/store"
	"repro/internal/stream"
)

func writeGraph(t *testing.T, g *graph.Graph, f store.Format) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.cgr")
	w, err := store.NewAtomicWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Abort()
	if err := store.WriteFormat(w, g, f); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	return path
}

func testGraph() *graph.Graph {
	return gen.Web(gen.WebConfig{N: 20000, OutDegree: 5, IntraSite: 0.7, Seed: 11})
}

// TestInjectorTransient: a transient fault fails exactly the scripted number
// of covering reads and then heals; bytes after healing are pristine.
func TestInjectorTransient(t *testing.T) {
	data := []byte("0123456789abcdef")
	inj := Wrap(bytes.NewReader(data), Fault{Kind: TransientError, Off: 4})
	p := make([]byte, 8)
	if _, err := inj.ReadAt(p, 2); !errors.Is(err, ErrInjected) {
		t.Fatalf("first covering read: got %v, want ErrInjected", err)
	}
	n, err := inj.ReadAt(p, 2)
	if err != nil || n != 8 || string(p) != "23456789" {
		t.Fatalf("healed read = %q, %d, %v", p[:n], n, err)
	}
	// A read not covering the offset never fires the fault.
	inj2 := Wrap(bytes.NewReader(data), Fault{Kind: TransientError, Off: 12})
	if _, err := inj2.ReadAt(p, 0); err != nil {
		t.Fatalf("non-covering read: %v", err)
	}
	st := inj.Stats()
	if st.TransientErrors != 1 || st.Reads != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestInjectorSkip: Skip lets the first covering reads pass so a fault can
// fire mid-stream rather than at open.
func TestInjectorSkip(t *testing.T) {
	data := bytes.Repeat([]byte{7}, 64)
	inj := Wrap(bytes.NewReader(data), Fault{Kind: TransientError, Off: 10, Skip: 2})
	p := make([]byte, 32)
	for i := 0; i < 2; i++ {
		if _, err := inj.ReadAt(p, 0); err != nil {
			t.Fatalf("read %d during skip window: %v", i, err)
		}
	}
	if _, err := inj.ReadAt(p, 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("third covering read: got %v, want ErrInjected", err)
	}
}

// TestInjectorShortRead: a short read delivers correct bytes up to the fault
// offset with a non-nil error, per the io.ReaderAt contract.
func TestInjectorShortRead(t *testing.T) {
	data := []byte("0123456789abcdef")
	inj := Wrap(bytes.NewReader(data), Fault{Kind: ShortRead, Off: 5})
	p := make([]byte, 10)
	n, err := inj.ReadAt(p, 2)
	if n != 4 || err == nil {
		t.Fatalf("short read = %d, %v; want 4 bytes and an error", n, err)
	}
	if string(p[:n]) != "2345" {
		t.Fatalf("short read delivered %q", p[:n])
	}
	n, err = inj.ReadAt(p, 2)
	if n != 10 || err != nil {
		t.Fatalf("healed read = %d, %v", n, err)
	}
}

// TestInjectorTruncate: reads at or past the cut see EOF, reads crossing it
// come back short, and the fault is persistent.
func TestInjectorTruncate(t *testing.T) {
	data := []byte("0123456789abcdef")
	inj := Wrap(bytes.NewReader(data), Fault{Kind: Truncate, Off: 8})
	p := make([]byte, 8)
	if _, err := inj.ReadAt(p, 8); err != io.EOF {
		t.Fatalf("read at the cut: got %v, want io.EOF", err)
	}
	n, err := inj.ReadAt(p, 6)
	if n != 2 || err != io.EOF || string(p[:n]) != "67" {
		t.Fatalf("crossing read = %q, %d, %v; want \"67\", 2, EOF", p[:n], n, err)
	}
	if _, err := inj.ReadAt(p, 12); err != io.EOF {
		t.Fatalf("truncation healed: %v", err)
	}
}

// TestInjectorBitFlip: the flip is persistent and confined to one bit of one
// byte.
func TestInjectorBitFlip(t *testing.T) {
	data := []byte{0, 0, 0, 0}
	inj := Wrap(bytes.NewReader(data), Fault{Kind: BitFlip, Off: 2, Bit: 3})
	p := make([]byte, 4)
	for round := 0; round < 2; round++ {
		if _, err := inj.ReadAt(p, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(p, []byte{0, 0, 8, 0}) {
			t.Fatalf("round %d read %v", round, p)
		}
	}
}

// TestTransientSurvivedWithRetry: a CGR3 file on a disk that throws seeded
// transient errors streams bit-identically to the clean file once wrapped in
// stream.Retry - and the injector confirms faults actually fired.
func TestTransientSurvivedWithRetry(t *testing.T) {
	g := testGraph()
	path := writeGraph(t, g, store.FormatCGR3)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	plan := TransientPlan(99, fi.Size(), 8)
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// One injector persists across open attempts, like a real disk: a
	// transient that fails the open has fired, and the retried open heals.
	inj := Wrap(f, plan...)
	var src *store.ReaderAtSource
	for attempt := 0; ; attempt++ {
		src, err = store.OpenReaderAt(inj, fi.Size(), path)
		if err == nil {
			break
		}
		if !errors.Is(err, ErrInjected) || attempt > len(plan) {
			t.Fatal(err)
		}
	}
	defer src.Close()
	got, err := stream.Collect(stream.Retry(src, stream.RetryConfig{
		MaxAttempts: len(plan) + 2,
		Retryable:   func(err error) bool { return errors.Is(err, ErrInjected) },
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(g.Edges) {
		t.Fatalf("streamed %d edges, want %d", len(got), len(g.Edges))
	}
	for i := range got {
		if got[i] != g.Edges[i] {
			t.Fatalf("edge %d = %v, want %v", i, got[i], g.Edges[i])
		}
	}
	if st := inj.Stats(); st.TransientErrors == 0 {
		t.Fatalf("no transient fault fired (stats %+v); the test proved nothing", st)
	}
}

// TestShortReadsAbsorbed: short reads alone never corrupt a stream - the
// windowed cursor and the verification reader both resume - and the decoded
// edges match exactly.
func TestShortReadsAbsorbed(t *testing.T) {
	g := testGraph()
	path := writeGraph(t, g, store.FormatCGR3)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	var plan []Fault
	for i := int64(1); i <= 6; i++ {
		plan = append(plan, Fault{Kind: ShortRead, Off: i * fi.Size() / 7, Count: 2})
	}
	src, err := Open(path, plan...)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	got, err := stream.Collect(stream.Retry(src, stream.RetryConfig{
		MaxAttempts: 4,
		Retryable:   func(err error) bool { return errors.Is(err, ErrInjected) },
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(g.Edges) {
		t.Fatalf("streamed %d edges, want %d", len(got), len(g.Edges))
	}
	for i := range got {
		if got[i] != g.Edges[i] {
			t.Fatalf("edge %d = %v, want %v", i, got[i], g.Edges[i])
		}
	}
	if st := src.Injector().Stats(); st.ShortReads == 0 {
		t.Fatalf("no short read fired (stats %+v)", st)
	}
}

// TestPersistentCorruptionDetected: a bit flip on the faulty disk is caught
// by the CGR3 checksums - never surfaced as wrong edges - no matter where it
// lands, and retrying does not launder it into success.
func TestPersistentCorruptionDetected(t *testing.T) {
	g := testGraph()
	path := writeGraph(t, g, store.FormatCGR3)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []int64{64, fi.Size() / 3, fi.Size() / 2, fi.Size() - 40} {
		src, err := Open(path, Fault{Kind: BitFlip, Off: off, Bit: 2})
		if err != nil {
			continue // caught at open: detected
		}
		_, cerr := stream.Collect(stream.Retry(src, stream.RetryConfig{MaxAttempts: 2,
			Retryable: func(err error) bool { return errors.Is(err, ErrInjected) }}))
		if cerr == nil {
			t.Errorf("bit flip at %d streamed to completion", off)
		}
		src.Close()
	}
}

// TestTruncationDetected: a file cut at any of several points is rejected at
// open or during the stream, never silently shortened.
func TestTruncationDetected(t *testing.T) {
	g := testGraph()
	path := writeGraph(t, g, store.FormatCGR3)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []int64{10, fi.Size() / 2, fi.Size() - 20} {
		src, err := Open(path, Fault{Kind: Truncate, Off: off})
		if err != nil {
			continue // caught at open: detected
		}
		if _, cerr := stream.Collect(src); cerr == nil {
			t.Errorf("truncation at %d streamed to completion", off)
		}
		src.Close()
	}
}

// TestFaultfsConformance: with an empty fault plan, the faultfs backend is
// just another store.File - segments, Verify and re-streaming all behave.
func TestFaultfsConformance(t *testing.T) {
	g := testGraph()
	for _, f := range []store.Format{store.FormatCGR1, store.FormatCGR2, store.FormatCGR3} {
		path := writeGraph(t, g, f)
		src, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := src.Verify(); f == store.FormatCGR3 {
			if err != nil {
				t.Fatalf("%s Verify: %v", f, err)
			}
		} else if !errors.Is(err, store.ErrNoChecksums) {
			t.Fatalf("%s Verify: got %v, want ErrNoChecksums", f, err)
		}
		seg, err := src.Segment(100, 300)
		if err != nil {
			t.Fatal(err)
		}
		got, err := stream.Collect(seg)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 200 || got[0] != g.Edges[100] {
			t.Fatalf("%s segment [100,300) returned %d edges starting %v", f, len(got), got[0])
		}
		if c, ok := seg.(io.Closer); ok {
			c.Close()
		}
		src.Close()
	}
}
