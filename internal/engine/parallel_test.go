package engine

import (
	"testing"

	"repro/internal/partition"
)

// TestParallelPageRankBitIdentical: the concurrent executor must produce
// the exact float64 values of the sequential engine (per-node work is
// disjoint; exchange order is fixed), for any worker count.
func TestParallelPageRankBitIdentical(t *testing.T) {
	g := testGraph(11)
	pl := place(t, g, &partition.CLUGP{Seed: 1}, 8)
	seq, seqStats, err := PageRank(pl, PageRankConfig{Iterations: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3, 16} {
		par, parStats, err := ParallelPageRank(pl, PageRankConfig{Iterations: 8}, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for v := range seq {
			if par[v] != seq[v] {
				t.Fatalf("workers=%d: rank[%d] differs: %v vs %v", workers, v, par[v], seq[v])
			}
		}
		if parStats.Messages != seqStats.Messages {
			t.Fatalf("workers=%d: message count %d vs %d", workers, parStats.Messages, seqStats.Messages)
		}
	}
}

func TestParallelPageRankEmptyAndErrors(t *testing.T) {
	res := &partition.Result{Algorithm: "hand", K: 2, NumVertices: 0, Assign: []int32{}}
	pl, err := NewPlacement(res)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ParallelPageRank(pl, PageRankConfig{}, 4); err != nil {
		t.Fatal(err)
	}
	g := testGraph(12)
	pl2 := place(t, g, &partition.Hashing{Seed: 1}, 4)
	if _, _, err := ParallelPageRank(pl2, PageRankConfig{Damping: 2}, 4); err == nil {
		t.Fatal("bad damping accepted")
	}
}
