package bench

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"time"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/store"
	"repro/internal/stream"
)

// StreamCell is one grid point of the out-of-core streaming benchmark: one
// dataset encoded in one on-disk format, streamed through one source
// backend. It captures the two numbers the compression and mmap work
// attack - on-disk bytes/edge and decode throughput - plus the wall clock
// of a full streaming CLUGP run (three restreaming passes over the file),
// which is where bytes-decoded-per-pass actually bites.
type StreamCell struct {
	Dataset string `json:"dataset"`
	// Backend is the source implementation: "file" (seek-based
	// store.FileSource) or "mmap" (store.MmapSource).
	Backend string `json:"backend"`
	// Format is the on-disk encoding: "CGR1", "CGR2" or "CGR3" (CGR2 plus
	// checksums; its cells price the integrity layer's lazy verification
	// against plain CGR2 on the same dataset).
	Format string `json:"format"`
	K      int    `json:"k"`
	Seed   uint64 `json:"seed"`
	// Vertices and Edges describe the built graph (after scaling).
	Vertices int `json:"vertices"`
	Edges    int `json:"edges"`
	// FileBytes is the encoded file size; BytesPerEdge = FileBytes/Edges.
	// Both are deterministic functions of the encoder, so Diff gates on
	// BytesPerEdge exactly: any growth is a compression regression.
	FileBytes    int64   `json:"file_bytes"`
	BytesPerEdge float64 `json:"bytes_per_edge"`
	// DecodeNS is one full page-cache-warm pass over the file with no
	// consumer (stream.Drain); DecodeMEdgesPerSec is the same number as
	// throughput. Hardware-dependent, compared with runtime tolerance.
	DecodeNS           int64   `json:"decode_ns"`
	DecodeMEdgesPerSec float64 `json:"decode_medges_per_sec"`
	// PartitionNS is a full out-of-core CLUGP run (three streaming passes,
	// assignment discarded as emitted).
	PartitionNS int64 `json:"partition_ns"`
	// ReplicationFactor and RelativeBalance must be bit-identical across
	// every backend x format combination of one dataset - the streamed
	// bytes decode to the same edge stream - and Diff treats them as
	// quality metrics.
	ReplicationFactor float64 `json:"replication_factor"`
	RelativeBalance   float64 `json:"relative_balance"`
}

// ID names the cell's grid coordinates, the join key for baseline diffs.
func (c StreamCell) ID() string {
	return fmt.Sprintf("stream/%s/%s/%s k=%d seed=%d", c.Dataset, c.Backend, c.Format, c.K, c.Seed)
}

// streamFormats and streamBackends enumerate the streaming grid axes.
var streamFormats = []store.Format{store.FormatCGR1, store.FormatCGR2, store.FormatCGR3}

const streamK = 32

// defaultStreamDatasets are the clustered crawl-ordered graphs where the
// compression and restreaming story lives (one moderate, one dense).
var defaultStreamDatasets = []string{"UK", "IT"}

// runStreamCells measures the streaming grid serially (the cells time
// wall-clock, so they never run concurrently with anything). Graphs are
// encoded once per format into a temp directory that is removed before
// returning.
func runStreamCells(cfg SuiteConfig) ([]StreamCell, error) {
	datasets := cfg.StreamDatasets
	if len(datasets) == 0 {
		datasets = defaultStreamDatasets
	}
	seed := cfg.Seeds[0]
	dir, err := os.MkdirTemp("", "bench-stream-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	var cells []StreamCell
	for _, name := range datasets {
		ds, err := DatasetByName(name)
		if err != nil {
			return nil, fmt.Errorf("bench: stream cells: %w", err)
		}
		g := ds.Build(cfg.Scale)
		suiteLogf(cfg, "stream: built %s (%d vertices, %d edges)", name, g.NumVertices, g.NumEdges())
		// Quality must agree across every combination of one dataset; the
		// first cell pins the reference.
		refRF := math.NaN()
		for _, format := range streamFormats {
			path := filepath.Join(dir, fmt.Sprintf("%s.%s.cgr", name, format))
			if err := writeEncoded(path, g, format); err != nil {
				return nil, err
			}
			for _, backend := range []string{"file", "mmap"} {
				cell, err := runStreamCell(name, path, backend, format, g, seed)
				if err != nil {
					return nil, fmt.Errorf("bench: stream cell %s/%s/%s: %w", name, backend, format, err)
				}
				if math.IsNaN(refRF) {
					refRF = cell.ReplicationFactor
				} else if cell.ReplicationFactor != refRF {
					return nil, fmt.Errorf("bench: stream cell %s/%s/%s: RF %v diverges from %v (backends must be bit-identical)",
						name, backend, format, cell.ReplicationFactor, refRF)
				}
				cells = append(cells, cell)
				suiteLogf(cfg, "  stream %-4s %-4s %s  %.2f B/edge  decode %.1f Medges/s  clugp %v",
					name, backend, format, cell.BytesPerEdge, cell.DecodeMEdgesPerSec,
					time.Duration(cell.PartitionNS).Round(time.Millisecond))
			}
		}
	}
	return cells, nil
}

func writeEncoded(path string, g *graph.Graph, f store.Format) error {
	w, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := store.WriteFormat(w, g, f); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

func runStreamCell(dataset, path, backend string, format store.Format, g *graph.Graph, seed uint64) (StreamCell, error) {
	var src store.File
	var err error
	if backend == "mmap" {
		src, err = store.OpenMmap(path)
	} else {
		src, err = store.Open(path)
	}
	if err != nil {
		return StreamCell{}, err
	}
	defer src.Close()

	// One warm-up pass so the timed pass measures decode over a warm page
	// cache (the multi-pass regime the backends are built for), then one
	// timed drain.
	if _, err := stream.Drain(src); err != nil {
		return StreamCell{}, err
	}
	start := time.Now()
	n, err := stream.Drain(src)
	if err != nil {
		return StreamCell{}, err
	}
	decodeNS := time.Since(start).Nanoseconds()

	p, err := partition.New("CLUGP", seed)
	if err != nil {
		return StreamCell{}, err
	}
	start = time.Now()
	res, err := partition.RunOutOfCore(p, src, streamK, nil)
	if err != nil {
		return StreamCell{}, err
	}
	partitionNS := time.Since(start).Nanoseconds()

	cell := StreamCell{
		Dataset: dataset, Backend: backend, Format: format.String(),
		K: streamK, Seed: seed,
		Vertices: g.NumVertices, Edges: g.NumEdges(),
		FileBytes:         src.SizeBytes(),
		DecodeNS:          decodeNS,
		PartitionNS:       partitionNS,
		ReplicationFactor: res.Quality.ReplicationFactor,
		RelativeBalance:   res.Quality.RelativeBalance,
	}
	if n > 0 {
		cell.BytesPerEdge = float64(cell.FileBytes) / float64(n)
		cell.DecodeMEdgesPerSec = float64(n) / 1e6 / (float64(decodeNS) / 1e9)
	}
	return cell, nil
}
